/**
 * @file
 * jumanji_lint: project-specific determinism & memory-safety checks.
 *
 * Standard linters don't know this codebase's invariants, so this
 * tool enforces the handful that matter for a deterministic
 * simulator (see docs/INTERNALS.md, "Invariants & static analysis"):
 *
 *   no-unseeded-rand   rand()/srand()/std::random_device and
 *                      wall-clock reads (time(), clock(),
 *                      gettimeofday, chrono clocks) are banned in
 *                      src/ — results must depend on (seed, config)
 *                      alone.
 *   rng-routing        <random> engines/distributions are banned;
 *                      all randomness flows through src/sim/rng.hh.
 *   unordered-iter     iterating an unordered_map/unordered_set
 *                      (range-for or .begin()/.cbegin()) is banned:
 *                      iteration order is implementation-defined and
 *                      has already caused run-to-run divergence in
 *                      placement and stats code. Keyed lookups are
 *                      fine; ordered containers are the fix.
 *   raw-new-delete     raw new/delete expressions are banned in
 *                      favour of smart pointers ("= delete" and
 *                      "operator new/delete" are not flagged).
 *   no-float           float shortens doubles feeding Tick/latency
 *                      arithmetic and diverges across -ffast-math /
 *                      FMA settings; the project uses double only.
 *   io-routing         direct stdio/iostream output (printf, fprintf,
 *                      std::cout, ...) is banned in src/: diagnostics
 *                      go through src/sim/logging.hh so --quiet and
 *                      log capture work, and stats/trace output goes
 *                      through the registry/tracer serializers. The
 *                      designated sinks (sim/logging.cc,
 *                      sim/statreg.cc, sim/tracing.cc) are exempt.
 *   env-routing        std::getenv is banned in bench/ outside
 *                      bench_common.hh: every environment knob a
 *                      bench reads must flow through the shared
 *                      helpers (seedFromEnv, mixCountFromEnv, ...)
 *                      so knobs stay documented in one place and
 *                      benches can't silently fork their own
 *                      env-variable conventions.
 *   hot-path-container std::map/std::unordered_map (and multimap
 *                      variants, plus their headers) are banned in
 *                      the per-access subsystems (src/cache/,
 *                      src/cpu/, src/dnuca/, src/mem/): node-based
 *                      maps cost a pointer-chasing tree walk per
 *                      access. Dense tables (SmallIdMap) or sorted
 *                      vectors (FlatMap, src/sim/flat_map.hh) are the
 *                      sanctioned replacements; std::map stays fine
 *                      in cold code (stats, driver, setup).
 *   concurrency-routing threading primitives (std::thread, mutexes,
 *                      atomics, condition variables, futures and
 *                      their headers) are banned in src/ outside
 *                      src/driver/: each simulation must stay
 *                      provably single-threaded so the driver can run
 *                      many of them concurrently without locks in the
 *                      model. The thread_local keyword is allowed —
 *                      per-thread state is how per-run context stays
 *                      isolated (src/sim/check.cc).
 *
 * Suppressions (justification required, reported in --json output):
 *   // lint-allow: <rule> <why>        same line or the line above
 *   // lint-allow-file: <rule> <why>   whole file
 *
 * Usage:
 *   jumanji_lint [--json] [--report <path>] <file-or-dir>...
 *
 * Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
    std::string snippet;
};

struct Suppression
{
    std::string rule; // "*" matches every rule
    std::string justification;
};

struct SourceFile
{
    std::string path;
    std::string raw;
    /** raw with comments/strings blanked to spaces (offsets kept). */
    std::string code;
    /** line number -> comment text on that line. */
    std::map<std::size_t, std::string> comments;
    /** line number -> suppressions declared on that line. */
    std::map<std::size_t, std::vector<Suppression>> lineAllows;
    std::vector<Suppression> fileAllows;
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t
lineOf(const std::string &text, std::size_t offset)
{
    return 1 + static_cast<std::size_t>(
                   std::count(text.begin(), text.begin() +
                              static_cast<std::ptrdiff_t>(offset), '\n'));
}

std::string
lineText(const std::string &text, std::size_t offset)
{
    std::size_t begin = text.rfind('\n', offset);
    begin = begin == std::string::npos ? 0 : begin + 1;
    std::size_t end = text.find('\n', offset);
    if (end == std::string::npos) end = text.size();
    std::string s = text.substr(begin, end - begin);
    // Trim for report readability.
    std::size_t first = s.find_first_not_of(" \t");
    if (first != std::string::npos) s = s.substr(first);
    if (s.size() > 90) s = s.substr(0, 87) + "...";
    return s;
}

/**
 * Blanks comments and string/char literals to spaces so the scanning
 * passes can't match inside them, and collects comment text per line
 * for suppression parsing. Newlines survive so offsets map to the
 * same line numbers in raw and code.
 */
void
stripToCode(SourceFile &sf)
{
    const std::string &in = sf.raw;
    std::string out = in;
    std::size_t i = 0;
    auto blank = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to && k < out.size(); k++)
            if (out[k] != '\n') out[k] = ' ';
    };
    while (i < in.size()) {
        char c = in[i];
        if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
            std::size_t end = in.find('\n', i);
            if (end == std::string::npos) end = in.size();
            sf.comments[lineOf(in, i)] += in.substr(i, end - i);
            blank(i, end);
            i = end;
        } else if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
            std::size_t end = in.find("*/", i + 2);
            end = end == std::string::npos ? in.size() : end + 2;
            // A block comment contributes to every line it spans.
            std::istringstream body(in.substr(i, end - i));
            std::string bodyLine;
            std::size_t ln = lineOf(in, i);
            while (std::getline(body, bodyLine))
                sf.comments[ln++] += bodyLine;
            blank(i, end);
            i = end;
        } else if (c == '"' || c == '\'') {
            std::size_t end = i + 1;
            while (end < in.size()) {
                if (in[end] == '\\') end += 2;
                else if (in[end] == c) { end++; break; }
                else end++;
            }
            blank(i + 1, end - 1 < in.size() ? end - 1 : in.size());
            i = end;
        } else {
            i++;
        }
    }
    sf.code = std::move(out);
}

void
parseSuppressions(SourceFile &sf)
{
    for (const auto &[line, text] : sf.comments) {
        std::size_t pos = 0;
        while (true) {
            bool fileWide = false;
            std::size_t at = text.find("lint-allow:", pos);
            std::size_t atFile = text.find("lint-allow-file:", pos);
            if (atFile != std::string::npos &&
                (at == std::string::npos || atFile < at)) {
                at = atFile;
                fileWide = true;
            }
            if (at == std::string::npos) break;
            std::size_t cursor = at + (fileWide
                                           ? sizeof("lint-allow-file:")
                                           : sizeof("lint-allow:")) - 1;
            std::istringstream rest(text.substr(cursor));
            Suppression s;
            rest >> s.rule;
            std::getline(rest, s.justification);
            std::size_t first = s.justification.find_first_not_of(" \t");
            s.justification = first == std::string::npos
                                  ? ""
                                  : s.justification.substr(first);
            if (!s.rule.empty()) {
                if (fileWide) sf.fileAllows.push_back(s);
                else sf.lineAllows[line].push_back(s);
            }
            pos = cursor;
        }
    }
}

bool
suppressed(const SourceFile &sf, const std::string &rule,
           std::size_t line)
{
    auto matches = [&](const Suppression &s) {
        return s.rule == "*" || s.rule == rule;
    };
    for (const auto &s : sf.fileAllows)
        if (matches(s)) return true;
    // Same line or the immediately preceding line.
    for (std::size_t ln : {line, line - 1}) {
        auto it = sf.lineAllows.find(ln);
        if (it != sf.lineAllows.end())
            for (const auto &s : it->second)
                if (matches(s)) return true;
    }
    return false;
}

/** All offsets where @p word appears as a whole identifier in code. */
std::vector<std::size_t>
findWord(const std::string &code, const std::string &word)
{
    std::vector<std::size_t> hits;
    std::size_t pos = 0;
    while ((pos = code.find(word, pos)) != std::string::npos) {
        bool left = pos == 0 || !identChar(code[pos - 1]);
        std::size_t after = pos + word.size();
        bool right = after >= code.size() || !identChar(code[after]);
        if (left && right) hits.push_back(pos);
        pos = after;
    }
    return hits;
}

std::size_t
skipSpaces(const std::string &s, std::size_t i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0)
        i++;
    return i;
}

/** Previous non-space offset, or npos. */
std::size_t
prevToken(const std::string &s, std::size_t i)
{
    while (i > 0) {
        i--;
        if (std::isspace(static_cast<unsigned char>(s[i])) == 0) return i;
    }
    return std::string::npos;
}

bool
precededByWord(const std::string &code, std::size_t at,
               const std::string &word)
{
    std::size_t p = prevToken(code, at);
    if (p == std::string::npos || p + 1 < word.size()) return false;
    std::size_t start = p + 1 - word.size();
    if (code.compare(start, word.size(), word) != 0) return false;
    return start == 0 || !identChar(code[start - 1]);
}

void
report(std::vector<Finding> &findings, const SourceFile &sf,
       const std::string &rule, std::size_t offset,
       const std::string &message)
{
    std::size_t line = lineOf(sf.code, offset);
    if (suppressed(sf, rule, line)) return;
    findings.push_back(Finding{sf.path, line, rule, message,
                               lineText(sf.raw, offset)});
}

// --- Rule: no-unseeded-rand -------------------------------------------

void
checkRandAndClocks(const SourceFile &sf, std::vector<Finding> &findings)
{
    struct Banned
    {
        const char *word;
        bool requiresCall; // only flag `word(`
        const char *why;
    };
    static const Banned kBanned[] = {
        {"rand", true, "libc rand() is unseeded global state"},
        {"srand", true, "seed through Rng, not global srand()"},
        {"random_device", false,
         "std::random_device is nondeterministic by design"},
        {"time", true, "wall-clock read breaks reproducibility"},
        {"clock", true, "wall-clock read breaks reproducibility"},
        {"gettimeofday", false,
         "wall-clock read breaks reproducibility"},
        {"system_clock", false,
         "wall-clock read breaks reproducibility"},
        {"steady_clock", false,
         "wall-clock read breaks reproducibility"},
        {"high_resolution_clock", false,
         "wall-clock read breaks reproducibility"},
    };
    for (const auto &b : kBanned) {
        for (std::size_t at : findWord(sf.code, b.word)) {
            if (b.requiresCall) {
                std::size_t after = skipSpaces(sf.code,
                                               at + std::strlen(b.word));
                if (after >= sf.code.size() || sf.code[after] != '(')
                    continue;
                // Member calls (x.time(), x->clock()) are not libc.
                std::size_t p = prevToken(sf.code, at);
                if (p != std::string::npos &&
                    (sf.code[p] == '.' ||
                     (sf.code[p] == '>' && p > 0 &&
                      sf.code[p - 1] == '-')))
                    continue;
                // Declarations like `Tick time(...)`: preceding
                // identifier means this is a declarator, not a call.
                if (p != std::string::npos && identChar(sf.code[p]))
                    continue;
            }
            report(findings, sf, "no-unseeded-rand", at,
                   std::string(b.word) + ": " + b.why);
        }
    }
}

// --- Rule: rng-routing ------------------------------------------------

void
checkRngRouting(const SourceFile &sf, std::vector<Finding> &findings)
{
    // rng.hh is the one sanctioned RNG implementation.
    if (sf.path.size() >= 6 &&
        sf.path.compare(sf.path.size() - 6, 6, "rng.hh") == 0)
        return;
    static const char *kBanned[] = {
        "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
        "ranlux24", "ranlux48", "knuth_b", "default_random_engine",
        "uniform_int_distribution", "uniform_real_distribution",
        "bernoulli_distribution", "normal_distribution",
        "exponential_distribution", "poisson_distribution",
        "discrete_distribution",
    };
    for (const char *word : kBanned)
        for (std::size_t at : findWord(sf.code, word))
            report(findings, sf, "rng-routing", at,
                   std::string(word) +
                       ": route all randomness through "
                       "src/sim/rng.hh (Rng)");
    // The include itself (string contents are blanked, so look at raw).
    std::size_t pos = 0;
    while ((pos = sf.raw.find("#include", pos)) != std::string::npos) {
        std::size_t eol = sf.raw.find('\n', pos);
        if (eol == std::string::npos) eol = sf.raw.size();
        std::string line = sf.raw.substr(pos, eol - pos);
        if (line.find("<random>") != std::string::npos)
            report(findings, sf, "rng-routing", pos,
                   "#include <random>: route all randomness through "
                   "src/sim/rng.hh (Rng)");
        pos = eol;
    }
}

// --- Rule: unordered-iter ---------------------------------------------

/**
 * Pass 1: names declared anywhere in the scanned set with an
 * unordered_map/unordered_set type. Declarations look like
 *   std::unordered_map<K, V> name...  |  unordered_set<T> name...
 * The template argument list is skipped with bracket counting.
 */
void
collectUnorderedNames(const SourceFile &sf, std::set<std::string> &names)
{
    for (const char *type : {"unordered_map", "unordered_set",
                             "unordered_multimap",
                             "unordered_multiset"}) {
        for (std::size_t at : findWord(sf.code, type)) {
            std::size_t i = skipSpaces(sf.code, at + std::strlen(type));
            if (i >= sf.code.size() || sf.code[i] != '<') continue;
            int depth = 0;
            while (i < sf.code.size()) {
                if (sf.code[i] == '<') depth++;
                else if (sf.code[i] == '>' && --depth == 0) { i++; break; }
                i++;
            }
            i = skipSpaces(sf.code, i);
            // Skip ref/pointer declarators.
            while (i < sf.code.size() &&
                   (sf.code[i] == '&' || sf.code[i] == '*'))
                i = skipSpaces(sf.code, i + 1);
            std::size_t begin = i;
            while (i < sf.code.size() && identChar(sf.code[i])) i++;
            if (i > begin)
                names.insert(sf.code.substr(begin, i - begin));
        }
    }
}

/**
 * Pass 2: range-for (`for (... : name)`) and explicit iterator loops
 * (`name.begin()` / `name.cbegin()`) over collected names. Keyed
 * lookups (find/count/at/[]) are order-insensitive and not flagged.
 */
void
checkUnorderedIteration(const SourceFile &sf,
                        const std::set<std::string> &names,
                        std::vector<Finding> &findings)
{
    for (const std::string &name : names) {
        for (std::size_t at : findWord(sf.code, name)) {
            // `name.begin()` / `name.cbegin()` / `name->begin()`.
            std::size_t i = at + name.size();
            std::size_t memberAt = std::string::npos;
            if (i < sf.code.size() && sf.code[i] == '.')
                memberAt = i + 1;
            else if (i + 1 < sf.code.size() && sf.code[i] == '-' &&
                     sf.code[i + 1] == '>')
                memberAt = i + 2;
            if (memberAt != std::string::npos) {
                for (const char *m : {"begin", "cbegin", "rbegin"}) {
                    std::size_t end = memberAt + std::strlen(m);
                    if (sf.code.compare(memberAt, std::strlen(m), m) ==
                            0 &&
                        (end >= sf.code.size() ||
                         !identChar(sf.code[end])))
                        report(findings, sf, "unordered-iter", at,
                               name + "." + m +
                                   "(): unordered iteration order is "
                                   "nondeterministic; use std::map or "
                                   "a sorted vector");
                }
                continue;
            }
            // Range-for: previous non-space char is ':' (but not '::').
            std::size_t p = prevToken(sf.code, at);
            if (p != std::string::npos && sf.code[p] == ':' &&
                (p == 0 || sf.code[p - 1] != ':')) {
                report(findings, sf, "unordered-iter", at,
                       "range-for over " + name +
                           ": unordered iteration order is "
                           "nondeterministic; use std::map or a "
                           "sorted vector");
            }
        }
    }
}

// --- Rule: raw-new-delete ---------------------------------------------

void
checkRawNewDelete(const SourceFile &sf, std::vector<Finding> &findings)
{
    for (std::size_t at : findWord(sf.code, "new")) {
        if (precededByWord(sf.code, at, "operator")) continue;
        report(findings, sf, "raw-new-delete", at,
               "raw new: use std::make_unique/std::make_shared");
    }
    for (std::size_t at : findWord(sf.code, "delete")) {
        if (precededByWord(sf.code, at, "operator")) continue;
        // `= delete` / `= delete;` declares a deleted function.
        std::size_t p = prevToken(sf.code, at);
        if (p != std::string::npos && sf.code[p] == '=') continue;
        report(findings, sf, "raw-new-delete", at,
               "raw delete: owning pointers must be smart pointers");
    }
}

// --- Rule: no-float ---------------------------------------------------

void
checkFloat(const SourceFile &sf, std::vector<Finding> &findings)
{
    for (std::size_t at : findWord(sf.code, "float"))
        report(findings, sf, "no-float", at,
               "float: Tick/latency arithmetic must stay in double "
               "(32-bit rounding diverges across toolchains)");
}

// --- Rule: io-routing -------------------------------------------------

bool
pathEndsWith(const std::string &path, const std::string &suffix)
{
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/**
 * Only src/ is held to the routing discipline: tools, benches, and
 * tests are user-facing programs whose job is to print.
 */
bool
ioRoutingApplies(const std::string &path)
{
    if (path.find("src/") == std::string::npos) return false;
    for (const char *sink :
         {"sim/logging.cc", "sim/statreg.cc", "sim/tracing.cc"})
        if (pathEndsWith(path, sink)) return false;
    return true;
}

void
checkIoRouting(const SourceFile &sf, std::vector<Finding> &findings)
{
    if (!ioRoutingApplies(sf.path)) return;
    struct Banned
    {
        const char *word;
        bool requiresCall;
    };
    static const Banned kBanned[] = {
        {"printf", true},   {"fprintf", true}, {"vprintf", true},
        {"vfprintf", true}, {"puts", true},    {"fputs", true},
        {"fputc", true},    {"putc", true},    {"putchar", true},
        {"fwrite", true},   {"cout", false},   {"cerr", false},
        {"clog", false},
    };
    for (const auto &b : kBanned) {
        for (std::size_t at : findWord(sf.code, b.word)) {
            if (b.requiresCall) {
                std::size_t after =
                    skipSpaces(sf.code, at + std::strlen(b.word));
                if (after >= sf.code.size() || sf.code[after] != '(')
                    continue;
                // Member calls (x.puts()) are not stdio.
                std::size_t p = prevToken(sf.code, at);
                if (p != std::string::npos &&
                    (sf.code[p] == '.' ||
                     (sf.code[p] == '>' && p > 0 &&
                      sf.code[p - 1] == '-')))
                    continue;
            }
            report(findings, sf, "io-routing", at,
                   std::string(b.word) +
                       ": direct output in src/ bypasses the logging "
                       "(src/sim/logging.hh) and stats/trace "
                       "serialization sinks");
        }
    }
}

// --- Rule: env-routing ------------------------------------------------

/**
 * Benches read environment knobs only through the bench_common.hh
 * helpers; src/ keeps its own sanctioned readers (driver, harness)
 * and is not scanned by this rule.
 */
bool
envRoutingApplies(const std::string &path)
{
    if (path.find("bench/") == std::string::npos) return false;
    return !pathEndsWith(path, "bench_common.hh");
}

void
checkEnvRouting(const SourceFile &sf, std::vector<Finding> &findings)
{
    if (!envRoutingApplies(sf.path)) return;
    for (std::size_t at : findWord(sf.code, "getenv")) {
        std::size_t after = skipSpaces(sf.code, at + 6);
        if (after >= sf.code.size() || sf.code[after] != '(') continue;
        // Member calls (x.getenv()) are not libc.
        std::size_t p = prevToken(sf.code, at);
        if (p != std::string::npos &&
            (sf.code[p] == '.' ||
             (sf.code[p] == '>' && p > 0 && sf.code[p - 1] == '-')))
            continue;
        report(findings, sf, "env-routing", at,
               "getenv: benches read env knobs through the "
               "bench_common.hh helpers (seedFromEnv, "
               "mixCountFromEnv, ...), not directly");
    }
}

// --- Rule: hot-path-container -----------------------------------------

/**
 * The per-access subsystems are the simulator's hot path; everything
 * else (sim/, core/, driver/, system/) may keep node-based maps for
 * cold bookkeeping.
 */
bool
hotPathContainerApplies(const std::string &path)
{
    for (const char *dir :
         {"src/cache/", "src/cpu/", "src/dnuca/", "src/mem/"})
        if (path.find(dir) != std::string::npos) return true;
    return false;
}

void
checkHotPathContainers(const SourceFile &sf,
                       std::vector<Finding> &findings)
{
    if (!hotPathContainerApplies(sf.path)) return;
    // Type uses: the container name followed by a template argument
    // list. Whole-identifier matching keeps SmallIdMap/FlatMap and
    // friends from tripping the "map" entry.
    static const char *kBanned[] = {"map", "multimap", "unordered_map",
                                    "unordered_multimap"};
    for (const char *word : kBanned) {
        for (std::size_t at : findWord(sf.code, word)) {
            std::size_t i = skipSpaces(sf.code, at + std::strlen(word));
            if (i >= sf.code.size() || sf.code[i] != '<') continue;
            report(findings, sf, "hot-path-container", at,
                   std::string(word) +
                       ": node-based maps tree-walk per access; use "
                       "SmallIdMap/FlatMap (src/sim/flat_map.hh) in "
                       "per-access code");
        }
    }
    // The includes themselves (scan raw: header names are blanked in
    // code).
    std::size_t pos = 0;
    while ((pos = sf.raw.find("#include", pos)) != std::string::npos) {
        std::size_t eol = sf.raw.find('\n', pos);
        if (eol == std::string::npos) eol = sf.raw.size();
        std::string line = sf.raw.substr(pos, eol - pos);
        for (const char *header : {"<map>", "<unordered_map>"})
            if (line.find(header) != std::string::npos)
                report(findings, sf, "hot-path-container", pos,
                       std::string("#include ") + header +
                           ": node-based maps tree-walk per access; "
                           "use SmallIdMap/FlatMap "
                           "(src/sim/flat_map.hh) in per-access code");
        pos = eol;
    }
}

// --- Rule: concurrency-routing ----------------------------------------

/**
 * Simulation code must stay provably single-threaded; the worker pool
 * in src/driver/ is the only sanctioned home for threading
 * primitives. Everything else in src/ is scanned.
 */
bool
concurrencyRoutingApplies(const std::string &path)
{
    if (path.find("src/") == std::string::npos) return false;
    return path.find("src/driver/") == std::string::npos;
}

void
checkConcurrencyRouting(const SourceFile &sf,
                        std::vector<Finding> &findings)
{
    if (!concurrencyRoutingApplies(sf.path)) return;
    // Whole-identifier matches, so the (allowed) thread_local keyword
    // never trips the "thread" entry.
    static const char *kBanned[] = {
        "thread", "jthread", "this_thread", "mutex", "shared_mutex",
        "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
        "atomic", "atomic_flag", "atomic_ref", "condition_variable",
        "condition_variable_any", "future", "shared_future", "promise",
        "async", "lock_guard", "unique_lock", "shared_lock",
        "scoped_lock", "call_once", "once_flag", "latch", "barrier",
        "counting_semaphore", "binary_semaphore", "stop_token",
        "stop_source",
    };
    for (const char *word : kBanned)
        for (std::size_t at : findWord(sf.code, word))
            report(findings, sf, "concurrency-routing", at,
                   std::string(word) +
                       ": threading primitives live in src/driver/ "
                       "only; simulation code is single-threaded");
    // The includes themselves (header names sit inside <>/"" literals,
    // which are blanked in code, so scan raw include lines).
    static const char *kHeaders[] = {
        "<thread>",  "<mutex>",      "<shared_mutex>",
        "<atomic>",  "<condition_variable>", "<future>",
        "<semaphore>", "<latch>",    "<barrier>",
        "<stop_token>",
    };
    std::size_t pos = 0;
    while ((pos = sf.raw.find("#include", pos)) != std::string::npos) {
        std::size_t eol = sf.raw.find('\n', pos);
        if (eol == std::string::npos) eol = sf.raw.size();
        std::string line = sf.raw.substr(pos, eol - pos);
        for (const char *header : kHeaders)
            if (line.find(header) != std::string::npos)
                report(findings, sf, "concurrency-routing", pos,
                       std::string("#include ") + header +
                           ": threading primitives live in "
                           "src/driver/ only");
        pos = eol;
    }
}

// --- Driver -----------------------------------------------------------

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < findings.size(); i++) {
        const Finding &f = findings[i];
        out += "  {\"file\": \"" + jsonEscape(f.file) +
               "\", \"line\": " + std::to_string(f.line) +
               ", \"rule\": \"" + jsonEscape(f.rule) +
               "\", \"message\": \"" + jsonEscape(f.message) +
               "\", \"snippet\": \"" + jsonEscape(f.snippet) + "\"}";
        out += i + 1 < findings.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::string reportPath;
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--report") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--report needs a path\n");
                return 2;
            }
            reportPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--json] [--report <path>] "
                        "<file-or-dir>...\n", argv[0]);
            return 0;
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty()) {
        std::fprintf(stderr, "usage: %s [--json] [--report <path>] "
                             "<file-or-dir>...\n", argv[0]);
        return 2;
    }

    std::vector<SourceFile> files;
    for (const auto &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (auto it = fs::recursive_directory_iterator(root, ec);
                 it != fs::recursive_directory_iterator(); ++it)
                if (it->is_regular_file() && isSourceFile(it->path()))
                    files.push_back(
                        SourceFile{it->path().string(), "", "", {}, {},
                                   {}});
        } else if (fs::is_regular_file(root, ec)) {
            files.push_back(
                SourceFile{root.string(), "", "", {}, {}, {}});
        } else {
            std::fprintf(stderr, "error: cannot read %s\n",
                         root.string().c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });

    for (auto &sf : files) {
        std::ifstream in(sf.path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "error: cannot read %s\n",
                         sf.path.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        sf.raw = buf.str();
        stripToCode(sf);
        parseSuppressions(sf);
    }

    // Pass 1: unordered container names across the whole scan set,
    // so a member declared in a header is caught iterating in a .cc.
    std::set<std::string> unorderedNames;
    for (const auto &sf : files) collectUnorderedNames(sf, unorderedNames);

    std::vector<Finding> findings;
    for (const auto &sf : files) {
        checkRandAndClocks(sf, findings);
        checkRngRouting(sf, findings);
        checkUnorderedIteration(sf, unorderedNames, findings);
        checkRawNewDelete(sf, findings);
        checkFloat(sf, findings);
        checkIoRouting(sf, findings);
        checkEnvRouting(sf, findings);
        checkHotPathContainers(sf, findings);
        checkConcurrencyRouting(sf, findings);
    }

    std::string output =
        json ? renderJson(findings) : std::string();
    if (!json) {
        for (const auto &f : findings)
            output += f.file + ":" + std::to_string(f.line) + ": [" +
                      f.rule + "] " + f.message + "\n    " + f.snippet +
                      "\n";
        output += std::to_string(files.size()) + " files scanned, " +
                  std::to_string(findings.size()) + " finding(s)\n";
    }
    std::fputs(output.c_str(), stdout);
    if (!reportPath.empty()) {
        std::ofstream out(reportPath);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         reportPath.c_str());
            return 2;
        }
        out << renderJson(findings);
    }
    return findings.empty() ? 0 : 1;
}
