/**
 * @file
 * Pass framework for jumanji_lint: file loading, suppression
 * handling, the suppression audit, and the three report renderers
 * (text, findings JSON, SARIF). The passes themselves live in
 * rules.cc, include_graph.cc, and stat_xref.cc.
 */

#include "tools/lint/lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fs = std::filesystem;

namespace jlint {

namespace {

bool
isSourcePath(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

/** Scenario JSON: a .json file under a "scenarios" directory. */
bool
isScenarioJson(const fs::path &p)
{
    if (p.extension() != ".json") return false;
    for (const auto &part : p.parent_path())
        if (part == "scenarios") return true;
    return false;
}

/**
 * Extracts waivers from the comment stream. Syntax (unchanged from
 * the regex-era tool):
 *
 *   // lint-allow <rule> <why>        -- with a colon after "allow";
 *   // lint-allow-file <rule> <why>   -- spelled out in INTERNALS §8
 *
 * (The colon is elided above so this comment is not itself parsed as
 * a waiver.) The line form covers its own line and the one below;
 * "*" matches every rule. The declaration line is recorded so the
 * audit can point at stale waivers.
 */
void
parseSuppressions(SourceFile &sf)
{
    for (const auto &[line, text] : sf.lexed.comments) {
        std::size_t pos = 0;
        while (true) {
            bool fileWide = false;
            std::size_t at = text.find("lint-allow:", pos);
            std::size_t atFile = text.find("lint-allow-file:", pos);
            if (atFile != std::string::npos &&
                (at == std::string::npos || atFile < at)) {
                at = atFile;
                fileWide = true;
            }
            if (at == std::string::npos) break;
            std::size_t cursor =
                at + (fileWide ? sizeof("lint-allow-file:")
                               : sizeof("lint-allow:")) -
                1;
            std::istringstream rest(text.substr(cursor));
            Suppression s;
            rest >> s.rule;
            std::getline(rest, s.justification);
            std::size_t first =
                s.justification.find_first_not_of(" \t");
            s.justification = first == std::string::npos
                                  ? ""
                                  : s.justification.substr(first);
            s.line = line;
            s.fileWide = fileWide;
            if (!s.rule.empty()) {
                if (fileWide) sf.fileAllows.push_back(s);
                else sf.lineAllows[line].push_back(s);
            }
            pos = cursor;
        }
    }
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

// --- Shared helpers ---------------------------------------------------

bool
pathEndsWith(const std::string &path, const std::string &suffix)
{
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::size_t
lineStartOffset(const std::string &raw, std::size_t line)
{
    std::size_t offset = 0;
    for (std::size_t ln = 1; ln < line && offset < raw.size(); ln++) {
        std::size_t nl = raw.find('\n', offset);
        if (nl == std::string::npos) break;
        offset = nl + 1;
    }
    return offset;
}

std::string
repoRelative(const std::string &path)
{
    std::string norm = path;
    std::replace(norm.begin(), norm.end(), '\\', '/');
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= norm.size()) {
        std::size_t slash = norm.find('/', start);
        if (slash == std::string::npos) {
            parts.push_back(norm.substr(start));
            break;
        }
        parts.push_back(norm.substr(start, slash - start));
        start = slash + 1;
    }
    std::size_t anchor = parts.size();
    for (std::size_t i = 0; i < parts.size(); i++)
        if (parts[i] == "src" || parts[i] == "bench" ||
            parts[i] == "tools" || parts[i] == "tests" ||
            parts[i] == "examples")
            anchor = i;
    if (anchor == parts.size()) return norm;
    std::string rel;
    for (std::size_t i = anchor; i < parts.size(); i++) {
        if (!rel.empty()) rel += '/';
        rel += parts[i];
    }
    return rel;
}

std::string
topDirOf(const std::string &relPath)
{
    std::size_t slash = relPath.find('/');
    return slash == std::string::npos ? std::string()
                                      : relPath.substr(0, slash);
}

std::string
subsystemOf(const std::string &relPath)
{
    std::string top = topDirOf(relPath);
    if (top != "src") return top;
    std::size_t first = relPath.find('/');
    std::size_t second = relPath.find('/', first + 1);
    if (second == std::string::npos) return std::string();
    return relPath.substr(first + 1, second - first - 1);
}

// --- Context ----------------------------------------------------------

std::string
LintContext::snippetAt(const SourceFile &sf, std::size_t offset)
{
    const std::string &raw = sf.raw;
    if (offset > raw.size()) offset = raw.size();
    std::size_t begin =
        offset == 0 ? std::string::npos : raw.rfind('\n', offset - 1);
    begin = begin == std::string::npos ? 0 : begin + 1;
    std::size_t end = raw.find('\n', offset);
    if (end == std::string::npos) end = raw.size();
    std::string text = raw.substr(begin, end - begin);
    std::size_t first = text.find_first_not_of(" \t");
    std::size_t last = text.find_last_not_of(" \t\r");
    text = first == std::string::npos
               ? std::string()
               : text.substr(first, last - first + 1);
    if (text.size() > 160) text = text.substr(0, 157) + "...";
    return text;
}

void
LintContext::report(const SourceFile &sf, const std::string &rule,
                    std::size_t line, std::size_t offset,
                    const std::string &message)
{
    auto matches = [&](const Suppression &s) {
        return s.rule == "*" || s.rule == rule;
    };
    bool waived = false;
    for (const auto &s : sf.fileAllows)
        if (matches(s)) {
            s.used = true;
            waived = true;
        }
    // Same line or the immediately preceding line.
    for (std::size_t ln : {line, line > 1 ? line - 1 : line}) {
        auto it = sf.lineAllows.find(ln);
        if (it != sf.lineAllows.end())
            for (const auto &s : it->second)
                if (matches(s)) {
                    s.used = true;
                    waived = true;
                }
    }
    if (waived) return;
    findings.push_back(
        Finding{sf.relPath, line, rule, message, snippetAt(sf, offset)});
}

// --- Suppression audit ------------------------------------------------

void
runSuppressionAudit(LintContext &ctx)
{
    // Audit findings bypass report() on purpose: a waiver cannot
    // waive the audit of itself.
    for (const auto &sf : ctx.files) {
        auto audit = [&](const Suppression &s) {
            std::string snippet = LintContext::snippetAt(
                sf, lineStartOffset(sf.raw, s.line));
            if (!s.used) {
                ctx.findings.push_back(Finding{
                    sf.relPath, s.line, "suppression-audit",
                    "stale waiver: '" + s.rule +
                        "' suppresses no finding here; remove it",
                    snippet});
            } else if (s.justification.empty()) {
                ctx.findings.push_back(Finding{
                    sf.relPath, s.line, "suppression-audit",
                    "waiver for '" + s.rule +
                        "' has no justification; say why the "
                        "exemption is sound",
                    snippet});
            }
        };
        for (const auto &s : sf.fileAllows) audit(s);
        for (const auto &[line, list] : sf.lineAllows)
            for (const auto &s : list) audit(s);
    }
}

// --- Driver -----------------------------------------------------------

void
addSource(LintContext &ctx, const std::string &path,
          const std::string &raw)
{
    SourceFile sf;
    sf.path = path;
    sf.relPath = repoRelative(path);
    sf.raw = raw;
    sf.isJson = pathEndsWith(path, ".json");
    if (!sf.isJson) {
        sf.lexed = lex(sf.raw);
        parseSuppressions(sf);
    }
    ctx.files.push_back(std::move(sf));
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  if (a.rule != b.rule) return a.rule < b.rule;
                  return a.message < b.message;
              });
}

void
runAllPasses(LintContext &ctx)
{
    runTokenRules(ctx);
    runIncludeGraphPass(ctx);
    runStatXrefPass(ctx);
    runSuppressionAudit(ctx);
    sortFindings(ctx.findings);
}

void
runLint(LintContext &ctx, const std::vector<std::string> &roots)
{
    std::vector<fs::path> paths;
    for (const auto &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (auto it = fs::recursive_directory_iterator(root, ec);
                 it != fs::recursive_directory_iterator(); ++it) {
                if (it->is_directory() &&
                    it->path().filename() == "lint_fixtures") {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file() &&
                    (isSourcePath(it->path()) ||
                     isScenarioJson(it->path())))
                    paths.push_back(it->path());
            }
        } else if (fs::is_regular_file(root, ec)) {
            paths.emplace_back(root);
        } else {
            throw std::runtime_error("cannot read " + root);
        }
    }
    std::sort(paths.begin(), paths.end());

    for (const auto &p : paths) {
        std::ifstream in(p, std::ios::binary);
        if (!in)
            throw std::runtime_error("cannot read " + p.string());
        std::ostringstream buf;
        buf << in.rdbuf();
        addSource(ctx, p.string(), buf.str());
    }
    runAllPasses(ctx);
}

// --- Renderers --------------------------------------------------------

std::string
renderText(const std::vector<Finding> &findings,
           std::size_t filesScanned)
{
    std::string out;
    for (const auto &f : findings)
        out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule +
               "] " + f.message + "\n    " + f.snippet + "\n";
    out += std::to_string(filesScanned) + " files scanned, " +
           std::to_string(findings.size()) + " finding(s)\n";
    return out;
}

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < findings.size(); i++) {
        const Finding &f = findings[i];
        out += "  {\"file\": \"" + jsonEscape(f.file) +
               "\", \"line\": " + std::to_string(f.line) +
               ", \"rule\": \"" + jsonEscape(f.rule) +
               "\", \"message\": \"" + jsonEscape(f.message) +
               "\", \"snippet\": \"" + jsonEscape(f.snippet) + "\"}";
        out += i + 1 < findings.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

std::string
renderSarif(const std::vector<Finding> &findings)
{
    std::set<std::string> ruleIds;
    for (const auto &f : findings) ruleIds.insert(f.rule);

    std::string out;
    out += "{\n";
    out += "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    out += "  \"version\": \"2.1.0\",\n";
    out += "  \"runs\": [\n    {\n";
    out += "      \"tool\": {\n        \"driver\": {\n";
    out += "          \"name\": \"jumanji_lint\",\n";
    out += "          \"informationUri\": "
           "\"docs/INTERNALS.md\",\n";
    out += "          \"rules\": [\n";
    std::size_t i = 0;
    for (const auto &rule : ruleIds) {
        out += "            {\"id\": \"" + jsonEscape(rule) + "\"}";
        out += ++i < ruleIds.size() ? ",\n" : "\n";
    }
    out += "          ]\n        }\n      },\n";
    out += "      \"results\": [\n";
    for (std::size_t j = 0; j < findings.size(); j++) {
        const Finding &f = findings[j];
        out += "        {\n";
        out += "          \"ruleId\": \"" + jsonEscape(f.rule) +
               "\",\n";
        out += "          \"level\": \"error\",\n";
        out += "          \"message\": {\"text\": \"" +
               jsonEscape(f.message) + "\"},\n";
        out += "          \"locations\": [\n";
        out += "            {\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"" +
               jsonEscape(f.file) +
               "\"}, \"region\": {\"startLine\": " +
               std::to_string(f.line == 0 ? 1 : f.line) + "}}}\n";
        out += "          ]\n        }";
        out += j + 1 < findings.size() ? ",\n" : "\n";
    }
    out += "      ]\n    }\n  ]\n}\n";
    return out;
}

} // namespace jlint
