/**
 * @file
 * The per-file token rules of jumanji_lint. Each rule walks a
 * token stream (tools/lint/lexer.hh), so string literals, char
 * literals, comments, raw strings, and line-spliced constructs can
 * never produce false matches — the exact blind spots of the
 * regex-era tool.
 *
 * Rule scopes (paths are repo-relative):
 *
 *   no-unseeded-rand     rand/srand/random_device everywhere
 *   clock-routing        wall-clock reads in src/ and bench/ minus
 *                        the two sanctioned readers, the profiler
 *                        (src/sim/profiler.cc) and driver telemetry
 *                        (src/driver/telemetry.cc); tools print wall
 *                        timing by design and are not scanned
 *   rng-routing          everywhere except src/sim/rng.hh
 *   unordered-iter       everywhere (cross-file: declarations in
 *                        headers are matched against loops in .cc)
 *   raw-new-delete       everywhere
 *   no-float             src/ and bench/ (identifier use and
 *                        f-suffixed literals)
 *   io-routing           src/ minus the logging/stats/trace sinks
 *                        and the driver telemetry heartbeat
 *   env-routing          bench/ minus bench_common.hh
 *   hot-path-container   src/cache|cpu|dnuca|mem
 *   concurrency-routing  src/ minus src/driver/
 */

#include "tools/lint/lint.hh"

#include <cstring>

namespace jlint {

namespace {

using Tokens = std::vector<Token>;

bool
nextIs(const Tokens &ts, std::size_t i, const char *text)
{
    return i + 1 < ts.size() && ts[i + 1].kind == Tok::Punct &&
           ts[i + 1].text == text;
}

/** True when ts[i] is directly preceded by `.` or `->`. */
bool
prevIsMemberAccess(const Tokens &ts, std::size_t i)
{
    if (i == 0) return false;
    const Token &p = ts[i - 1];
    if (p.kind != Tok::Punct) return false;
    if (p.text == ".") return true;
    return p.text == ">" && i >= 2 && ts[i - 2].kind == Tok::Punct &&
           ts[i - 2].text == "-" &&
           ts[i - 2].offset + 1 == p.offset; // `->`, not `a - >b`
}

bool
prevIsIdent(const Tokens &ts, std::size_t i, const char *text = nullptr)
{
    if (i == 0 || ts[i - 1].kind != Tok::Ident) return false;
    return text == nullptr || ts[i - 1].text == text;
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.compare(0, std::strlen(prefix), prefix) == 0;
}

// --- no-unseeded-rand -------------------------------------------------

void
checkRandAndClocks(LintContext &ctx, const SourceFile &sf)
{
    struct Banned
    {
        const char *word;
        bool requiresCall; // only flag `word(`
        const char *why;
    };
    static const Banned kBanned[] = {
        {"rand", true, "libc rand() is unseeded global state"},
        {"srand", true, "seed through Rng, not global srand()"},
        {"random_device", false,
         "std::random_device is nondeterministic by design"},
    };
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident) continue;
        for (const auto &b : kBanned) {
            if (ts[i].text != b.word) continue;
            if (b.requiresCall) {
                if (!nextIs(ts, i, "(")) continue;
                // Member calls (x.rand()) are not libc.
                if (prevIsMemberAccess(ts, i)) continue;
                // Declarations like `int rand(...)`: a preceding
                // identifier means declarator, not call.
                if (prevIsIdent(ts, i)) continue;
            }
            ctx.report(sf, "no-unseeded-rand", ts[i].line,
                       ts[i].offset,
                       std::string(b.word) + ": " + b.why);
        }
    }
}

// --- clock-routing ----------------------------------------------------

/**
 * Wall-clock reads in simulation code break reproducibility, so host
 * time is measured by exactly two files: the profiler's clock source
 * (src/sim/profiler.cc) and the driver telemetry sink
 * (src/driver/telemetry.cc). Tools and tests print wall timing by
 * design and are not scanned.
 */
bool
clockRoutingApplies(const std::string &relPath)
{
    if (!startsWith(relPath, "src/") &&
        !startsWith(relPath, "bench/"))
        return false;
    for (const char *sink : {"sim/profiler.cc", "driver/telemetry.cc"})
        if (pathEndsWith(relPath, sink)) return false;
    return true;
}

void
checkClockRouting(LintContext &ctx, const SourceFile &sf)
{
    if (!clockRoutingApplies(sf.relPath)) return;
    struct Banned
    {
        const char *word;
        bool requiresCall; // only flag `word(`
    };
    static const Banned kBanned[] = {
        {"time", true},          {"clock", true},
        {"gettimeofday", false}, {"system_clock", false},
        {"steady_clock", false}, {"high_resolution_clock", false},
    };
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident) continue;
        for (const auto &b : kBanned) {
            if (ts[i].text != b.word) continue;
            if (b.requiresCall) {
                if (!nextIs(ts, i, "(")) continue;
                // Member calls (x.time(), x->clock()) are not libc.
                if (prevIsMemberAccess(ts, i)) continue;
                // Declarations like `Tick time(...)`: a preceding
                // identifier means declarator, not call.
                if (prevIsIdent(ts, i)) continue;
            }
            ctx.report(sf, "clock-routing", ts[i].line, ts[i].offset,
                       std::string(b.word) +
                           ": wall-clock reads break reproducibility; "
                           "host time is read only by the profiler "
                           "(src/sim/profiler.cc) and driver "
                           "telemetry (src/driver/telemetry.cc)");
        }
    }
}

// --- rng-routing ------------------------------------------------------

void
checkRngRouting(LintContext &ctx, const SourceFile &sf)
{
    // rng.hh is the one sanctioned RNG implementation.
    if (pathEndsWith(sf.relPath, "rng.hh")) return;
    static const char *kBanned[] = {
        "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
        "ranlux24", "ranlux48", "knuth_b", "default_random_engine",
        "uniform_int_distribution", "uniform_real_distribution",
        "bernoulli_distribution", "normal_distribution",
        "exponential_distribution", "poisson_distribution",
        "discrete_distribution",
    };
    for (const Token &t : sf.lexed.tokens) {
        if (t.kind != Tok::Ident) continue;
        for (const char *word : kBanned)
            if (t.text == word)
                ctx.report(sf, "rng-routing", t.line, t.offset,
                           std::string(word) +
                               ": route all randomness through "
                               "src/sim/rng.hh (Rng)");
    }
    for (const IncludeDirective &inc : sf.lexed.includes)
        if (inc.angled && inc.target == "random")
            ctx.report(sf, "rng-routing", inc.line, inc.offset,
                       "#include <random>: route all randomness "
                       "through src/sim/rng.hh (Rng)");
}

// --- unordered-iter ---------------------------------------------------

/**
 * Pass 1: names declared anywhere in the scanned set with an
 * unordered container type — `unordered_map<K, V> name` — so a
 * member declared in a header is caught iterating in a .cc. The
 * template argument list is skipped with bracket counting (each `>`
 * of `>>` is its own token, so nested closers count correctly).
 */
void
collectUnorderedNames(const SourceFile &sf, std::set<std::string> &names)
{
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident) continue;
        if (ts[i].text != "unordered_map" &&
            ts[i].text != "unordered_set" &&
            ts[i].text != "unordered_multimap" &&
            ts[i].text != "unordered_multiset")
            continue;
        std::size_t j = i + 1;
        if (j >= ts.size() || ts[j].kind != Tok::Punct ||
            ts[j].text != "<")
            continue;
        int depth = 0;
        while (j < ts.size()) {
            if (ts[j].kind == Tok::Punct && ts[j].text == "<") depth++;
            else if (ts[j].kind == Tok::Punct && ts[j].text == ">" &&
                     --depth == 0) {
                j++;
                break;
            }
            j++;
        }
        // Skip ref/pointer declarators.
        while (j < ts.size() && ts[j].kind == Tok::Punct &&
               (ts[j].text == "&" || ts[j].text == "*"))
            j++;
        if (j < ts.size() && ts[j].kind == Tok::Ident)
            names.insert(ts[j].text);
    }
}

/**
 * Pass 2: range-for (`for (... : name)`) and explicit iterator
 * loops (`name.begin()` / `name.cbegin()`) over collected names.
 * Keyed lookups (find/count/at/[]) are order-insensitive and not
 * flagged.
 */
void
checkUnorderedIteration(LintContext &ctx, const SourceFile &sf,
                        const std::set<std::string> &names)
{
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident || names.count(ts[i].text) == 0)
            continue;
        const std::string &name = ts[i].text;
        std::size_t memberAt = 0;
        if (nextIs(ts, i, ".")) memberAt = i + 2;
        else if (nextIs(ts, i, "-") && i + 2 < ts.size() &&
                 ts[i + 2].kind == Tok::Punct && ts[i + 2].text == ">" &&
                 ts[i + 1].offset + 1 == ts[i + 2].offset)
            memberAt = i + 3;
        if (memberAt != 0) {
            if (memberAt < ts.size() &&
                ts[memberAt].kind == Tok::Ident &&
                (ts[memberAt].text == "begin" ||
                 ts[memberAt].text == "cbegin" ||
                 ts[memberAt].text == "rbegin"))
                ctx.report(sf, "unordered-iter", ts[i].line,
                           ts[i].offset,
                           name + "." + ts[memberAt].text +
                               "(): unordered iteration order is "
                               "nondeterministic; use std::map or a "
                               "sorted vector");
            continue;
        }
        // Range-for: previous token is ':' (but not '::').
        if (i >= 1 && ts[i - 1].kind == Tok::Punct &&
            ts[i - 1].text == ":" &&
            !(i >= 2 && ts[i - 2].kind == Tok::Punct &&
              ts[i - 2].text == ":" &&
              ts[i - 2].offset + 1 == ts[i - 1].offset))
            ctx.report(sf, "unordered-iter", ts[i].line, ts[i].offset,
                       "range-for over " + name +
                           ": unordered iteration order is "
                           "nondeterministic; use std::map or a "
                           "sorted vector");
    }
}

// --- raw-new-delete ---------------------------------------------------

void
checkRawNewDelete(LintContext &ctx, const SourceFile &sf)
{
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident) continue;
        if (ts[i].text == "new") {
            if (prevIsIdent(ts, i, "operator")) continue;
            ctx.report(sf, "raw-new-delete", ts[i].line, ts[i].offset,
                       "raw new: use std::make_unique/"
                       "std::make_shared");
        } else if (ts[i].text == "delete") {
            if (prevIsIdent(ts, i, "operator")) continue;
            // `= delete` declares a deleted function.
            if (i >= 1 && ts[i - 1].kind == Tok::Punct &&
                ts[i - 1].text == "=")
                continue;
            ctx.report(sf, "raw-new-delete", ts[i].line, ts[i].offset,
                       "raw delete: owning pointers must be smart "
                       "pointers");
        }
    }
}

// --- no-float ---------------------------------------------------------

/** A decimal floating literal with an f/F suffix (hex is exempt). */
bool
isFloatSuffixedLiteral(const std::string &num)
{
    if (num.size() < 2) return false;
    char last = num.back();
    if (last != 'f' && last != 'F') return false;
    if (num.size() > 1 && num[0] == '0' &&
        (num[1] == 'x' || num[1] == 'X'))
        return false;
    // Require a fractional or exponent part so 32-suffix typos in
    // macros ("0xFFu" is already excluded above) stay out of scope.
    return num.find('.') != std::string::npos ||
           num.find('e') != std::string::npos ||
           num.find('E') != std::string::npos;
}

void
checkFloat(LintContext &ctx, const SourceFile &sf)
{
    if (!startsWith(sf.relPath, "src/") &&
        !startsWith(sf.relPath, "bench/"))
        return;
    for (const Token &t : sf.lexed.tokens) {
        if (t.kind == Tok::Ident && t.text == "float")
            ctx.report(sf, "no-float", t.line, t.offset,
                       "float: Tick/latency arithmetic must stay in "
                       "double (32-bit rounding diverges across "
                       "toolchains)");
        else if (t.kind == Tok::Number &&
                 isFloatSuffixedLiteral(t.text))
            ctx.report(sf, "no-float", t.line, t.offset,
                       t.text +
                           ": f-suffixed literal is single-precision; "
                           "drop the suffix to stay in double");
    }
}

// --- io-routing -------------------------------------------------------

/**
 * Only src/ is held to the routing discipline: tools, benches, and
 * tests are user-facing programs whose job is to print.
 */
bool
ioRoutingApplies(const std::string &relPath)
{
    if (!startsWith(relPath, "src/")) return false;
    for (const char *sink :
         {"sim/logging.cc", "sim/statreg.cc", "sim/tracing.cc",
          "driver/telemetry.cc"})
        if (pathEndsWith(relPath, sink)) return false;
    return true;
}

void
checkIoRouting(LintContext &ctx, const SourceFile &sf)
{
    if (!ioRoutingApplies(sf.relPath)) return;
    struct Banned
    {
        const char *word;
        bool requiresCall;
    };
    static const Banned kBanned[] = {
        {"printf", true},   {"fprintf", true}, {"vprintf", true},
        {"vfprintf", true}, {"puts", true},    {"fputs", true},
        {"fputc", true},    {"putc", true},    {"putchar", true},
        {"fwrite", true},   {"cout", false},   {"cerr", false},
        {"clog", false},
    };
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident) continue;
        for (const auto &b : kBanned) {
            if (ts[i].text != b.word) continue;
            if (b.requiresCall) {
                if (!nextIs(ts, i, "(")) continue;
                // Member calls (x.puts()) are not stdio.
                if (prevIsMemberAccess(ts, i)) continue;
            }
            ctx.report(sf, "io-routing", ts[i].line, ts[i].offset,
                       std::string(b.word) +
                           ": direct output in src/ bypasses the "
                           "logging (src/sim/logging.hh) and "
                           "stats/trace serialization sinks");
        }
    }
}

// --- env-routing ------------------------------------------------------

/**
 * Benches read environment knobs only through the bench_common.hh
 * helpers; src/ keeps its own sanctioned readers (driver, harness)
 * and is not scanned by this rule.
 */
void
checkEnvRouting(LintContext &ctx, const SourceFile &sf)
{
    if (!startsWith(sf.relPath, "bench/") ||
        pathEndsWith(sf.relPath, "bench_common.hh"))
        return;
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident || ts[i].text != "getenv")
            continue;
        if (!nextIs(ts, i, "(")) continue;
        // Member calls (x.getenv()) are not libc.
        if (prevIsMemberAccess(ts, i)) continue;
        ctx.report(sf, "env-routing", ts[i].line, ts[i].offset,
                   "getenv: benches read env knobs through the "
                   "bench_common.hh helpers (seedFromEnv, "
                   "mixCountFromEnv, ...), not directly");
    }
}

// --- hot-path-container -----------------------------------------------

/**
 * The per-access subsystems are the simulator's hot path; everything
 * else (sim/, core/, driver/, system/) may keep node-based maps for
 * cold bookkeeping.
 */
bool
hotPathContainerApplies(const std::string &relPath)
{
    for (const char *dir :
         {"src/cache/", "src/cpu/", "src/dnuca/", "src/mem/"})
        if (startsWith(relPath, dir)) return true;
    return false;
}

void
checkHotPathContainers(LintContext &ctx, const SourceFile &sf)
{
    if (!hotPathContainerApplies(sf.relPath)) return;
    // Type uses: the container name followed by a template argument
    // list. Exact-identifier matching keeps SmallIdMap/FlatMap and
    // friends from tripping the "map" entry.
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident) continue;
        if (ts[i].text != "map" && ts[i].text != "multimap" &&
            ts[i].text != "unordered_map" &&
            ts[i].text != "unordered_multimap")
            continue;
        if (!nextIs(ts, i, "<")) continue;
        ctx.report(sf, "hot-path-container", ts[i].line, ts[i].offset,
                   ts[i].text +
                       ": node-based maps tree-walk per access; use "
                       "SmallIdMap/FlatMap (src/sim/flat_map.hh) in "
                       "per-access code");
    }
    for (const IncludeDirective &inc : sf.lexed.includes) {
        if (!inc.angled ||
            (inc.target != "map" && inc.target != "unordered_map"))
            continue;
        ctx.report(sf, "hot-path-container", inc.line, inc.offset,
                   "#include <" + inc.target +
                       ">: node-based maps tree-walk per access; use "
                       "SmallIdMap/FlatMap (src/sim/flat_map.hh) in "
                       "per-access code");
    }
}

// --- concurrency-routing ----------------------------------------------

/**
 * Simulation code must stay provably single-threaded; the worker
 * pool in src/driver/ is the only sanctioned home for threading
 * primitives. Everything else in src/ is scanned.
 */
void
checkConcurrencyRouting(LintContext &ctx, const SourceFile &sf)
{
    if (!startsWith(sf.relPath, "src/") ||
        startsWith(sf.relPath, "src/driver/"))
        return;
    // Exact-identifier matches, so the (allowed) thread_local
    // keyword never trips the "thread" entry.
    static const char *kBanned[] = {
        "thread", "jthread", "this_thread", "mutex", "shared_mutex",
        "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
        "atomic", "atomic_flag", "atomic_ref", "condition_variable",
        "condition_variable_any", "future", "shared_future", "promise",
        "async", "lock_guard", "unique_lock", "shared_lock",
        "scoped_lock", "call_once", "once_flag", "latch", "barrier",
        "counting_semaphore", "binary_semaphore", "stop_token",
        "stop_source",
    };
    for (const Token &t : sf.lexed.tokens) {
        if (t.kind != Tok::Ident) continue;
        for (const char *word : kBanned)
            if (t.text == word)
                ctx.report(sf, "concurrency-routing", t.line, t.offset,
                           std::string(word) +
                               ": threading primitives live in "
                               "src/driver/ only; simulation code is "
                               "single-threaded");
    }
    static const char *kHeaders[] = {
        "thread",    "mutex", "shared_mutex",       "atomic",
        "condition_variable", "future", "semaphore", "latch",
        "barrier",   "stop_token",
    };
    for (const IncludeDirective &inc : sf.lexed.includes) {
        if (!inc.angled) continue;
        for (const char *header : kHeaders)
            if (inc.target == header)
                ctx.report(sf, "concurrency-routing", inc.line,
                           inc.offset,
                           "#include <" + inc.target +
                               ">: threading primitives live in "
                               "src/driver/ only");
    }
}

} // namespace

void
runTokenRules(LintContext &ctx)
{
    std::set<std::string> unorderedNames;
    for (const SourceFile &sf : ctx.files)
        if (!sf.isJson) collectUnorderedNames(sf, unorderedNames);
    for (const SourceFile &sf : ctx.files) {
        if (sf.isJson) continue;
        checkRandAndClocks(ctx, sf);
        checkClockRouting(ctx, sf);
        checkRngRouting(ctx, sf);
        checkUnorderedIteration(ctx, sf, unorderedNames);
        checkRawNewDelete(ctx, sf);
        checkFloat(ctx, sf);
        checkIoRouting(ctx, sf);
        checkEnvRouting(ctx, sf);
        checkHotPathContainers(ctx, sf);
        checkConcurrencyRouting(ctx, sf);
    }
}

} // namespace jlint
