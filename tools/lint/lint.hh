/**
 * @file
 * jumanji_lint core: the pass framework behind the project's static
 * analyzer (docs/INTERNALS.md §8).
 *
 * The analyzer is a pipeline: every source file is lexed once
 * (tools/lint/lexer.hh), then a fixed sequence of passes walks the
 * token streams (and, for the cross-artifact pass, the scenario JSON
 * files) and reports findings. Three pass families:
 *
 *   rules.cc          the per-file token rules (no-unseeded-rand,
 *                     clock-routing, rng-routing, unordered-iter,
 *                     raw-new-delete, no-float, io-routing,
 *                     env-routing, hot-path-container,
 *                     concurrency-routing)
 *   include_graph.cc  layering-dag (subsystem DAG conformance,
 *                     include cycles) and unused-include
 *   stat_xref.cc      stat-xref (dotted stat names referenced by
 *                     string must be bindable) and schema-xref
 *                     (scenario JSON keys must exist in the
 *                     ObjectReader schemas)
 *
 * Suppressions: "lint-allow" / "lint-allow-file" comments (see
 * parseSuppressions). Every suppression must actually suppress
 * something — the post-pass audit reports stale waivers under the
 * suppression-audit rule, and audit findings are themselves not
 * suppressible, so waivers cannot rot silently.
 *
 * The analyzer is standalone on purpose: it must build and run even
 * when the simulator library is broken, so nothing here may include
 * src/.
 */

#ifndef JUMANJI_LINT_LINT_HH
#define JUMANJI_LINT_LINT_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.hh"

namespace jlint {

struct Finding
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
    std::string snippet;
};

struct Suppression
{
    std::string rule; // "*" matches every rule
    std::string justification;
    std::size_t line = 0; // declaration line
    bool fileWide = false;
    /** Set when a finding was discarded because of this waiver. */
    mutable bool used = false;
};

struct SourceFile
{
    /** Path as given on the command line (absolute or relative). */
    std::string path;
    /**
     * Path relative to the repository root ("src/cache/foo.cc"),
     * derived from the last src/bench/tools/tests/examples path
     * component — all path-scoped decisions use this, so fixture
     * trees can emulate any layout.
     */
    std::string relPath;
    std::string raw;
    LexedSource lexed;
    /** line -> suppressions declared on that line. */
    std::map<std::size_t, std::vector<Suppression>> lineAllows;
    std::vector<Suppression> fileAllows;
    bool isJson = false;
};

/** The whole scan set plus the findings accumulated so far. */
struct LintContext
{
    std::vector<SourceFile> files;
    std::vector<Finding> findings;

    /**
     * Reports a finding unless a matching waiver exists (which is
     * then marked used). Line-scoped waivers match the finding line
     * or the line above.
     */
    void report(const SourceFile &sf, const std::string &rule,
                std::size_t line, std::size_t offset,
                const std::string &message);

    /** Untrimmed source line at @p offset, trimmed for the report. */
    static std::string snippetAt(const SourceFile &sf,
                                 std::size_t offset);
};

// --- Passes (each appends to ctx.findings) ----------------------------

/** The ten per-file token rules. */
void runTokenRules(LintContext &ctx);

/** layering-dag + unused-include over the project include graph. */
void runIncludeGraphPass(LintContext &ctx);

/** stat-xref + schema-xref across C++ and scenario JSON files. */
void runStatXrefPass(LintContext &ctx);

/**
 * The suppression audit: every waiver parsed from the scan set must
 * have suppressed at least one finding. Runs last.
 */
void runSuppressionAudit(LintContext &ctx);

// --- Driver -----------------------------------------------------------

/**
 * Loads, lexes, and scans @p roots (files or directories;
 * directories are walked recursively for .cc/.hh/.cpp/.hpp/.h and,
 * under a "scenarios" directory, .json). Directories named
 * "lint_fixtures" are skipped — they hold deliberate violations for
 * tests/test_lint.cc. Leaves ctx.findings sorted by (file, line,
 * rule). Throws std::runtime_error on IO errors.
 */
void runLint(LintContext &ctx, const std::vector<std::string> &roots);

/** All passes plus the audit and the final sort (ctx pre-loaded). */
void runAllPasses(LintContext &ctx);

/** Loads one in-memory file into @p ctx (tests). */
void addSource(LintContext &ctx, const std::string &path,
               const std::string &raw);

/** Sorts findings by (file, line, rule, message). */
void sortFindings(std::vector<Finding> &findings);

/** Plain-text report (one line + snippet per finding + summary). */
std::string renderText(const std::vector<Finding> &findings,
                       std::size_t filesScanned);

/** The findings array jumanji_lint has always emitted for --json. */
std::string renderJson(const std::vector<Finding> &findings);

/** SARIF 2.1.0 document for CI annotation (--sarif). */
std::string renderSarif(const std::vector<Finding> &findings);

// --- Shared helpers ---------------------------------------------------

bool pathEndsWith(const std::string &path, const std::string &suffix);

/** Byte offset of the start of 1-based @p line in @p raw. */
std::size_t lineStartOffset(const std::string &raw, std::size_t line);

/**
 * Repo-relative form of @p path: the suffix starting at the last
 * path component in {src, bench, tools, tests, examples}, or the
 * path unchanged when none matches.
 */
std::string repoRelative(const std::string &path);

/** First path component of @p relPath ("src", "bench", ...). */
std::string topDirOf(const std::string &relPath);

/**
 * Subsystem of a repo-relative path: "sim", "cache", ... for
 * src/<sub>/ files, else the top directory ("bench", "tools",
 * "tests", "examples"). Empty when the path is not project-shaped.
 */
std::string subsystemOf(const std::string &relPath);

// --- Stat-name patterns (stat_xref, exposed for tests) ----------------

/**
 * A dotted-name pattern: literal characters plus two wildcard bytes
 * — kAnyWild ("some unknown substring", from non-literal expression
 * parts) and kNumWild ("a run of digits", from statIndexName calls).
 */
constexpr char kAnyWild = '\x01';
constexpr char kNumWild = '\x02';

/**
 * True when some concrete string is generatable by both patterns
 * (glob intersection over the two wildcard kinds).
 */
bool patternsIntersect(const std::string &a, const std::string &b);

} // namespace jlint

#endif // JUMANJI_LINT_LINT_HH
