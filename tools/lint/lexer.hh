/**
 * @file
 * A small C++ lexer for jumanji_lint (docs/INTERNALS.md §8).
 *
 * The analyzer's passes operate on a token stream, not raw text, so
 * string literals, char literals, comments, raw strings, and
 * line-spliced constructs can never produce false matches. The lexer
 * is deliberately not a full C++ front end: it tokenizes faithfully
 * (identifiers, numbers, string/char literals with prefixes and
 * escapes, single-char punctuators) and understands exactly the
 * preprocessor shape the passes need (#include targets are recorded
 * separately and emit no tokens; other directive tokens are emitted
 * with an in-directive flag).
 *
 * Line splices (backslash-newline) are handled everywhere except
 * inside raw string literals, matching translation phase 2 — an
 * identifier or comment split across lines is still one token or one
 * comment.
 */

#ifndef JUMANJI_LINT_LEXER_HH
#define JUMANJI_LINT_LEXER_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace jlint {

enum class Tok
{
    Ident,  ///< identifier or keyword
    Number, ///< pp-number (integer or floating literal, with suffix)
    String, ///< string literal; text holds the (undecoded) body
    Char,   ///< character literal; text holds the body
    Punct,  ///< single punctuation character
};

struct Token
{
    Tok kind = Tok::Punct;
    /** Spelling (identifier/number/punct) or literal body (string). */
    std::string text;
    /** Byte offset of the token start in SourceFile::raw. */
    std::size_t offset = 0;
    /** 1-based physical line of the token start. */
    std::size_t line = 0;
    /** Token sits on a preprocessor directive line. */
    bool inDirective = false;
};

struct IncludeDirective
{
    /** Header path as written ("src/sim/types.hh" or "vector"). */
    std::string target;
    /** True for <...>, false for "...". */
    bool angled = false;
    std::size_t line = 0;
    std::size_t offset = 0;
};

/** The lexed form of one translation unit. */
struct LexedSource
{
    std::vector<Token> tokens;
    std::vector<IncludeDirective> includes;
    /** Physical line -> concatenated comment text on that line. */
    std::map<std::size_t, std::string> comments;
};

/** Tokenizes @p raw. Never throws; unknown bytes become Punct. */
LexedSource lex(const std::string &raw);

/** True when @p c can appear in an identifier. */
bool isIdentChar(char c);

} // namespace jlint

#endif // JUMANJI_LINT_LEXER_HH
