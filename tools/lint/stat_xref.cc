/**
 * @file
 * Cross-artifact consistency passes for jumanji_lint.
 *
 * stat-xref — stat names are a string-keyed contract: bindings
 * (StatRegistry::addCounter/addGauge/addFormula/addDistribution)
 * create dotted names, and benches, specs, timeline selectors, and
 * scenario files reference them by string. Names are often built by
 * concatenation, so both sides are abstracted into patterns over
 * literals plus two wildcards: ANY (an unknown subexpression, zero
 * or more chars) and NUM (a statIndexName() call, one or more
 * digits). A reference is dangling when its pattern intersects no
 * binding pattern (glob intersection, patternsIntersect); dotted
 * references only, so opaque lookups stay out of scope. Distribution
 * leaves (.count/.mean/.p50/.../.bNN) are handled by a strip-and-
 * retry. Timeline selectors (StatRegistry prefix matching) are
 * checked against literal-leading name fragments instead: any
 * constructible prefix chain ("llc.bank" + statIndexName(b) + ".").
 *
 * schema-xref — scenario JSON must satisfy the ObjectReader schemas.
 * The schemas are not duplicated here: they are extracted from the
 * token streams of src/system/config_json.cc (SystemConfig) and
 * src/driver/spec.cc (experiment spec), by attributing get()/setU32/
 * setU64/setDouble/setBool key literals to the nearest preceding
 * ObjectReader construction of the same variable. Readers built with
 * a non-literal prefix (the per-item readers for groups/variants/
 * columns) pool their keys into one item schema. Aggregate column
 * keys come from columnKeys() in spec.cc; a column "key" that is
 * neither an aggregate nor a resolvable dotted stat name is a
 * finding. apps.kv.<phase>.* column keys get a stricter check: the
 * phase segment is interpolated into the stat name at runtime (the
 * binding pattern is apps.kv.*.p95, which any phase string matches),
 * so the segment is validated against the addPhase() label literals
 * of the load-trace presets (any load_trace.cc in the scan set);
 * without that file the phase check is skipped.
 *
 * Both passes degrade gracefully on partial scans: no bindings in
 * the scan set disables reference checking, and missing schema
 * sources disable scenario validation.
 */

#include "tools/lint/lint.hh"

#include <cctype>
#include <cstring>
#include <functional>

namespace jlint {

// --- Pattern intersection ---------------------------------------------

bool
patternsIntersect(const std::string &a, const std::string &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    // 0 unknown, 1 false, 2 true.
    std::vector<signed char> memo((n + 1) * (m + 1), 0);
    std::function<bool(std::size_t, std::size_t)> go =
        [&](std::size_t i, std::size_t j) -> bool {
        signed char &slot = memo[i * (m + 1) + j];
        if (slot != 0) return slot == 2;
        bool r = false;
        if (i == n && j == m) {
            r = true;
        } else if (i < n && a[i] == kAnyWild) {
            r = go(i + 1, j) || (j < m && go(i, j + 1));
        } else if (j < m && b[j] == kAnyWild) {
            r = go(i, j + 1) || (i < n && go(i + 1, j));
        } else if (i == n || j == m) {
            r = false;
        } else if (a[i] == kNumWild && b[j] == kNumWild) {
            r = go(i + 1, j + 1) || go(i, j + 1) || go(i + 1, j);
        } else if (a[i] == kNumWild) {
            r = std::isdigit(static_cast<unsigned char>(b[j])) != 0 &&
                (go(i, j + 1) || go(i + 1, j + 1));
        } else if (b[j] == kNumWild) {
            r = std::isdigit(static_cast<unsigned char>(a[i])) != 0 &&
                (go(i + 1, j) || go(i + 1, j + 1));
        } else {
            r = a[i] == b[j] && go(i + 1, j + 1);
        }
        slot = r ? 2 : 1;
        return r;
    };
    return go(0, 0);
}

namespace {

using Tokens = std::vector<Token>;

bool
isWild(char c)
{
    return c == kAnyWild || c == kNumWild;
}

std::string
collapseWilds(const std::string &p)
{
    std::string out;
    for (char c : p) {
        if (c == kAnyWild && !out.empty() && out.back() == kAnyWild)
            continue;
        out += c;
    }
    return out;
}

bool
hasLiteralChar(const std::string &p)
{
    for (char c : p)
        if (!isWild(c)) return true;
    return false;
}

bool
hasLiteralDot(const std::string &p)
{
    return p.find('.') != std::string::npos;
}

bool
literalLeading(const std::string &p)
{
    return !p.empty() && !isWild(p[0]);
}

/** Human form of a pattern: ANY as '*', NUM as "NN". */
std::string
display(const std::string &p)
{
    std::string out;
    for (char c : p) {
        if (c == kAnyWild) out += '*';
        else if (c == kNumWild) out += "NN";
        else out += c;
    }
    return out;
}

// --- Token expression parsing -----------------------------------------

bool
tokIs(const Tokens &ts, std::size_t i, const char *punct)
{
    return i < ts.size() && ts[i].kind == Tok::Punct &&
           ts[i].text == punct;
}

bool
prevIsDotArrow(const Tokens &ts, std::size_t i)
{
    if (i == 0) return false;
    if (tokIs(ts, i - 1, ".")) return true;
    return tokIs(ts, i - 1, ">") && i >= 2 && tokIs(ts, i - 2, "-") &&
           ts[i - 2].offset + 1 == ts[i - 1].offset;
}

/** Index one past the ")" matching the "(" at @p iOpen. */
std::size_t
skipBalancedParens(const Tokens &ts, std::size_t iOpen)
{
    int depth = 0;
    std::size_t j = iOpen;
    while (j < ts.size()) {
        if (tokIs(ts, j, "(")) depth++;
        else if (tokIs(ts, j, ")") && --depth == 0) return j + 1;
        j++;
    }
    return j;
}

/**
 * Abstracts a string-building expression starting at @p i into a
 * pattern: string literals contribute their text, statIndexName(...)
 * contributes NUM, everything else contributes ANY. Stops at the
 * first ',', ')', ';', or '}' outside nested parentheses and stores
 * that position in @p end.
 */
std::string
parseChain(const Tokens &ts, std::size_t i, std::size_t *end = nullptr)
{
    std::string pat;
    std::size_t j = i;
    while (j < ts.size()) {
        const Token &t = ts[j];
        if (t.kind == Tok::Punct) {
            if (t.text == "(") {
                pat += kAnyWild;
                j = skipBalancedParens(ts, j);
                continue;
            }
            if (t.text == ")" || t.text == "," || t.text == ";" ||
                t.text == "}")
                break;
            if (t.text == "?" || t.text == ":") pat += kAnyWild;
            j++;
            continue;
        }
        if (t.kind == Tok::String) {
            pat += t.text;
            j++;
            continue;
        }
        if (t.kind == Tok::Ident) {
            if (t.text == "c_str" && prevIsDotArrow(ts, j)) {
                // ("..." ).c_str() does not change the value.
                if (tokIs(ts, j + 1, "("))
                    j = skipBalancedParens(ts, j + 1);
                else j++;
                continue;
            }
            if (t.text == "statIndexName" && tokIs(ts, j + 1, "(")) {
                pat += kNumWild;
                j = skipBalancedParens(ts, j + 1);
                continue;
            }
            pat += kAnyWild;
            if (tokIs(ts, j + 1, "(")) j = skipBalancedParens(ts, j + 1);
            else j++;
            continue;
        }
        pat += kAnyWild; // Number / Char
        j++;
    }
    if (end != nullptr) *end = j;
    return collapseWilds(pat);
}

/** Strips one distribution/histogram leaf suffix, if present. */
std::string
stripLeafSuffix(const std::string &p)
{
    static const char *kLeaves[] = {
        ".count", ".mean", ".min",       ".max",      ".p50",
        ".p95",   ".p99",  ".total",     ".underflow", ".overflow"};
    for (const char *leaf : kLeaves)
        if (pathEndsWith(p, leaf))
            return p.substr(0, p.size() - std::strlen(leaf));
    std::size_t k = p.size();
    while (k > 0 &&
           std::isdigit(static_cast<unsigned char>(p[k - 1])) != 0)
        k--;
    if (k < p.size() && k >= 2 && p[k - 1] == 'b' && p[k - 2] == '.')
        return p.substr(0, k - 2);
    return p;
}

// --- Extraction -------------------------------------------------------

struct StatRef
{
    const SourceFile *sf = nullptr;
    std::size_t line = 0;
    std::size_t offset = 0;
    std::string pattern;
};

struct Extracted
{
    std::vector<std::string> bindings;
    std::vector<StatRef> refs;      // dotted lookups, full-name match
    std::vector<StatRef> selectors; // prefix match
    std::vector<std::string> candidates; // literal-leading fragments
};

bool
isBindingCall(const std::string &name)
{
    return name == "addCounter" || name == "addGauge" ||
           name == "addFormula" || name == "addDistribution";
}

bool
isLookupCall(const std::string &name)
{
    return name == "stat" || name == "value" || name == "has" ||
           name == "columnIndex";
}

bool
isSelectorCall(const std::string &name)
{
    return name == "snapshot" || name == "snapshotValues" ||
           name == "leaves";
}

void
extractFromFile(const SourceFile &sf, Extracted &out)
{
    const Tokens &ts = sf.lexed.tokens;
    // String tokens consumed as references or selectors must not
    // double as match candidates — a bogus selector would otherwise
    // satisfy itself.
    std::vector<bool> consumed(ts.size(), false);
    for (std::size_t i = 0; i < ts.size(); i++) {
        const Token &t = ts[i];
        if (t.kind != Tok::Ident) continue;

        if (isBindingCall(t.text) && tokIs(ts, i + 1, "(")) {
            std::string pat = parseChain(ts, i + 2);
            if (hasLiteralChar(pat)) out.bindings.push_back(pat);
            continue;
        }
        if (isLookupCall(t.text) && tokIs(ts, i + 1, "(") &&
            prevIsDotArrow(ts, i)) {
            std::size_t end = i + 2;
            std::string pat = parseChain(ts, i + 2, &end);
            if (hasLiteralDot(pat)) {
                out.refs.push_back(
                    StatRef{&sf, t.line, t.offset, pat});
                for (std::size_t j = i + 2; j < end; j++)
                    consumed[j] = true;
            }
            continue;
        }
        // timelineStats = {"apps.", ...}
        if (t.text == "timelineStats" && tokIs(ts, i + 1, "=") &&
            tokIs(ts, i + 2, "{")) {
            for (std::size_t j = i + 3;
                 j < ts.size() && !tokIs(ts, j, "}"); j++)
                if (ts[j].kind == Tok::String) {
                    out.selectors.push_back(StatRef{
                        &sf, ts[j].line, ts[j].offset, ts[j].text});
                    consumed[j] = true;
                }
            continue;
        }
        // EpochRecorder rec(&reg, {"llc.", ...}) and
        // reg.snapshot({...}) / snapshotValues / leaves.
        std::size_t iOpen = 0;
        if (t.text == "EpochRecorder" && i + 2 < ts.size() &&
            ts[i + 1].kind == Tok::Ident && tokIs(ts, i + 2, "("))
            iOpen = i + 2;
        else if (isSelectorCall(t.text) && tokIs(ts, i + 1, "(") &&
                 prevIsDotArrow(ts, i))
            iOpen = i + 1;
        if (iOpen != 0) {
            std::size_t close = skipBalancedParens(ts, iOpen);
            for (std::size_t j = iOpen; j < close; j++)
                if (ts[j].kind == Tok::String &&
                    hasLiteralDot(ts[j].text)) {
                    out.selectors.push_back(StatRef{
                        &sf, ts[j].line, ts[j].offset, ts[j].text});
                    consumed[j] = true;
                }
        }
    }
    // Literal-leading name fragments: every remaining constructible
    // string containing a dot is a potential stat-name prefix.
    for (std::size_t i = 0; i < ts.size(); i++)
        if (ts[i].kind == Tok::String && !consumed[i] &&
            hasLiteralDot(ts[i].text))
            out.candidates.push_back(parseChain(ts, i));
}

// --- ObjectReader schema extraction -----------------------------------

struct Schemas
{
    /** Literal-prefix readers: prefix -> accepted keys. */
    std::map<std::string, std::set<std::string>> byPrefix;
    /** Keys of readers built with a computed prefix (array items). */
    std::set<std::string> itemKeys;
    bool loaded = false;
};

void
addSchemaKey(Schemas &out,
             const std::map<std::string, std::pair<bool, std::string>>
                 &readers,
             const std::string &var, const std::string &key)
{
    auto it = readers.find(var);
    if (it == readers.end()) return;
    if (it->second.first) out.byPrefix[it->second.second].insert(key);
    else out.itemKeys.insert(key);
}

Schemas
extractSchemas(const SourceFile &sf)
{
    Schemas out;
    out.loaded = true;
    // var -> (prefix is a literal, prefix). Sequential scan means a
    // reuse of the same variable name rebinds it, which matches the
    // lexical structure of both schema sources.
    std::map<std::string, std::pair<bool, std::string>> readers;
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        const Token &t = ts[i];
        if (t.kind != Tok::Ident) continue;
        if (t.text == "ObjectReader" && i + 2 < ts.size() &&
            ts[i + 1].kind == Tok::Ident && tokIs(ts, i + 2, "(")) {
            // The prefix is the second constructor argument: the
            // token after the first comma at call depth.
            std::size_t close = skipBalancedParens(ts, i + 2);
            int depth = 0;
            for (std::size_t j = i + 2; j < close; j++) {
                if (tokIs(ts, j, "(")) depth++;
                else if (tokIs(ts, j, ")")) depth--;
                else if (tokIs(ts, j, ",") && depth == 1) {
                    bool literal = j + 1 < close &&
                                   ts[j + 1].kind == Tok::String;
                    readers[ts[i + 1].text] = {
                        literal,
                        literal ? ts[j + 1].text : std::string()};
                    break;
                }
            }
            continue;
        }
        // var.get("key")
        if (readers.count(t.text) != 0 && tokIs(ts, i + 1, ".") &&
            i + 4 < ts.size() && ts[i + 2].kind == Tok::Ident &&
            ts[i + 2].text == "get" && tokIs(ts, i + 3, "(") &&
            ts[i + 4].kind == Tok::String) {
            addSchemaKey(out, readers, t.text, ts[i + 4].text);
            continue;
        }
        // setU32(var, "key", ...)
        if ((t.text == "setU32" || t.text == "setU64" ||
             t.text == "setDouble" || t.text == "setBool") &&
            tokIs(ts, i + 1, "(") && i + 4 < ts.size() &&
            ts[i + 2].kind == Tok::Ident && tokIs(ts, i + 3, ",") &&
            ts[i + 4].kind == Tok::String)
            addSchemaKey(out, readers, ts[i + 2].text,
                         ts[i + 4].text);
    }
    return out;
}

/**
 * Collects every addPhase("label", ...) first-argument literal.
 * Called on load_trace.cc files only: the preset builders there are
 * the single source of the phase labels the apps.kv.<phase>.* stat
 * names are built from. The LoadTrace::addPhase definition itself is
 * skipped naturally (its first token after "(" is "const", not a
 * string).
 */
void
extractPhaseLabels(const SourceFile &sf, std::set<std::string> &out)
{
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i + 2 < ts.size(); i++)
        if (ts[i].kind == Tok::Ident && ts[i].text == "addPhase" &&
            tokIs(ts, i + 1, "(") && ts[i + 2].kind == Tok::String)
            out.insert(ts[i + 2].text);
}

/**
 * The <phase> segment of an "apps.kv.<phase>.<leaf>" stat name, or
 * "" when @p key has a different shape.
 */
std::string
kvPhaseSegment(const std::string &key)
{
    static const char kPrefix[] = "apps.kv.";
    const std::size_t start = sizeof(kPrefix) - 1;
    if (key.rfind(kPrefix, 0) != 0) return std::string();
    std::size_t dot = key.find('.', start);
    if (dot == std::string::npos) return std::string();
    return key.substr(start, dot - start);
}

/** The aggregate column keys from columnKeys() in spec.cc. */
std::set<std::string>
extractAggregates(const SourceFile &sf)
{
    std::set<std::string> out;
    const Tokens &ts = sf.lexed.tokens;
    for (std::size_t i = 0; i < ts.size(); i++) {
        if (ts[i].kind != Tok::Ident || ts[i].text != "columnKeys")
            continue;
        if (!tokIs(ts, i + 1, "(") || !tokIs(ts, i + 2, ")") ||
            !tokIs(ts, i + 3, "{"))
            continue; // a call site, not the definition
        int depth = 0;
        for (std::size_t j = i + 3; j < ts.size(); j++) {
            if (tokIs(ts, j, "{")) depth++;
            else if (tokIs(ts, j, "}") && --depth == 0) break;
            else if (ts[j].kind == Tok::String)
                out.insert(ts[j].text);
        }
    }
    return out;
}

// --- Scenario JSON ----------------------------------------------------

struct JVal
{
    enum Kind
    {
        Obj,
        Arr,
        Str,
        Other
    };
    Kind kind = Other;
    std::vector<std::pair<std::string, JVal>> fields; // Obj
    std::vector<JVal> items;                          // Arr
    std::string str;                                  // Str
    std::size_t line = 0; // of the value (Obj key: of the key)
};

/** A tiny JSON reader that keeps line numbers for every value. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &s) : s_(s) {}

    bool ok() const { return ok_; }
    std::size_t errorLine() const { return line_; }

    JVal
    parse()
    {
        JVal v = value();
        ws();
        if (i_ < s_.size()) ok_ = false;
        return v;
    }

  private:
    void
    ws()
    {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_])) != 0) {
            if (s_[i_] == '\n') line_++;
            i_++;
        }
    }

    bool
    eat(char c)
    {
        ws();
        if (i_ < s_.size() && s_[i_] == c) {
            i_++;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        std::string out;
        if (!eat('"')) {
            ok_ = false;
            return out;
        }
        while (i_ < s_.size() && s_[i_] != '"') {
            if (s_[i_] == '\\' && i_ + 1 < s_.size()) {
                out += s_[i_ + 1]; // undecoded is fine for key names
                i_ += 2;
                continue;
            }
            if (s_[i_] == '\n') line_++;
            out += s_[i_++];
        }
        if (i_ >= s_.size()) ok_ = false;
        else i_++;
        return out;
    }

    JVal
    value()
    {
        ws();
        JVal v;
        v.line = line_;
        if (i_ >= s_.size()) {
            ok_ = false;
            return v;
        }
        char c = s_[i_];
        if (c == '{') {
            i_++;
            v.kind = JVal::Obj;
            ws();
            if (eat('}')) return v;
            while (ok_) {
                ws();
                std::size_t keyLine = line_;
                std::string key = string();
                if (!ok_ || !eat(':')) {
                    ok_ = false;
                    return v;
                }
                JVal child = value();
                child.line = child.line == 0 ? keyLine : child.line;
                v.fields.emplace_back(key, std::move(child));
                v.fields.back().second.line = keyLine;
                if (eat(',')) continue;
                if (eat('}')) return v;
                ok_ = false;
            }
            return v;
        }
        if (c == '[') {
            i_++;
            v.kind = JVal::Arr;
            ws();
            if (eat(']')) return v;
            while (ok_) {
                v.items.push_back(value());
                if (eat(',')) continue;
                if (eat(']')) return v;
                ok_ = false;
            }
            return v;
        }
        if (c == '"') {
            v.kind = JVal::Str;
            v.str = string();
            return v;
        }
        // Numbers, true/false/null: consume the scalar.
        v.kind = JVal::Other;
        while (i_ < s_.size() && s_[i_] != ',' && s_[i_] != '}' &&
               s_[i_] != ']' &&
               std::isspace(static_cast<unsigned char>(s_[i_])) == 0)
            i_++;
        return v;
    }

    const std::string &s_;
    std::size_t i_ = 0;
    std::size_t line_ = 1;
    bool ok_ = true;
};

const JVal *
field(const JVal &obj, const std::string &key)
{
    if (obj.kind != JVal::Obj) return nullptr;
    for (const auto &f : obj.fields)
        if (f.first == key) return &f.second;
    return nullptr;
}

std::string
joined(const std::set<std::string> &set)
{
    std::string out;
    for (const auto &s : set) {
        if (!out.empty()) out += '|';
        out += s;
    }
    return out;
}

} // namespace

// --- The pass ---------------------------------------------------------

void
runStatXrefPass(LintContext &ctx)
{
    Extracted ex;
    const SourceFile *specFile = nullptr;
    const SourceFile *configFile = nullptr;
    std::set<std::string> phaseLabels;
    bool havePhaseSource = false;
    for (const SourceFile &sf : ctx.files) {
        if (sf.isJson) continue;
        extractFromFile(sf, ex);
        if (pathEndsWith(sf.relPath, "driver/spec.cc")) specFile = &sf;
        if (pathEndsWith(sf.relPath, "system/config_json.cc"))
            configFile = &sf;
        if (pathEndsWith(sf.relPath, "load_trace.cc")) {
            havePhaseSource = true;
            extractPhaseLabels(sf, phaseLabels);
        }
    }

    const bool haveBindings = !ex.bindings.empty();
    auto resolves = [&](const std::string &pat) {
        for (const std::string &b : ex.bindings)
            if (patternsIntersect(pat, b)) return true;
        std::string stripped = stripLeafSuffix(pat);
        if (stripped != pat)
            for (const std::string &b : ex.bindings)
                if (patternsIntersect(stripped, b)) return true;
        return false;
    };

    std::vector<std::string> prefixCands;
    for (const std::string &c : ex.candidates)
        if (literalLeading(c)) prefixCands.push_back(c);
    auto selectorResolves = [&](const std::string &sel) {
        for (const std::string &c : prefixCands)
            if (patternsIntersect(sel + kAnyWild, c + kAnyWild))
                return true;
        return false;
    };

    if (haveBindings) {
        for (const StatRef &r : ex.refs)
            if (!resolves(r.pattern))
                ctx.report(*r.sf, "stat-xref", r.line, r.offset,
                           "stat reference \"" + display(r.pattern) +
                               "\" matches no registered stat "
                               "binding");
        for (const StatRef &s : ex.selectors)
            if (!selectorResolves(s.pattern))
                ctx.report(*s.sf, "stat-xref", s.line, s.offset,
                           "timeline selector \"" +
                               display(s.pattern) +
                               "\" can never match a registered "
                               "stat name");
    }

    // --- Scenario JSON validation ------------------------------------
    if (specFile == nullptr || configFile == nullptr) return;
    bool anyJson = false;
    for (const SourceFile &sf : ctx.files)
        if (sf.isJson) anyJson = true;
    if (!anyJson) return;

    const Schemas spec = extractSchemas(*specFile);
    const Schemas config = extractSchemas(*configFile);
    const std::set<std::string> aggregates = extractAggregates(*specFile);

    auto reportAt = [&](const SourceFile &sf, std::size_t line,
                        const std::string &rule,
                        const std::string &message) {
        ctx.report(sf, rule, line, lineStartOffset(sf.raw, line),
                   message);
    };

    auto checkKeys = [&](const SourceFile &sf, const JVal &obj,
                         const std::set<std::string> &allowed,
                         const std::string &label,
                         const std::string &source) {
        if (obj.kind != JVal::Obj) return;
        for (const auto &f : obj.fields)
            if (allowed.count(f.first) == 0)
                reportAt(sf, f.second.line, "schema-xref",
                         "key \"" + f.first +
                             "\" is not accepted by the " + label +
                             " reader (" + source + ")");
    };

    const std::string specSrc = "src/driver/spec.cc";
    const std::string cfgSrc = "src/system/config_json.cc";

    auto specSchema = [&](const std::string &prefix)
        -> const std::set<std::string> & {
        static const std::set<std::string> kEmpty;
        auto it = spec.byPrefix.find(prefix);
        return it == spec.byPrefix.end() ? kEmpty : it->second;
    };
    auto cfgSchema = [&](const std::string &prefix)
        -> const std::set<std::string> & {
        static const std::set<std::string> kEmpty;
        auto it = config.byPrefix.find(prefix);
        return it == config.byPrefix.end() ? kEmpty : it->second;
    };

    auto checkOverrides = [&](const SourceFile &sf, const JVal &ov) {
        if (ov.kind != JVal::Obj) return;
        checkKeys(sf, ov, cfgSchema(""), "SystemConfig", cfgSrc);
        for (const auto &f : ov.fields) {
            if (config.byPrefix.count(f.first) != 0 &&
                f.first != "")
                checkKeys(sf, f.second, cfgSchema(f.first),
                          "\"" + f.first + "\"", cfgSrc);
            if (f.first == "timelineStats" &&
                f.second.kind == JVal::Arr && haveBindings)
                for (const JVal &item : f.second.items)
                    if (item.kind == JVal::Str &&
                        !selectorResolves(item.str))
                        reportAt(sf, item.line, "stat-xref",
                                 "timeline selector \"" + item.str +
                                     "\" can never match a "
                                     "registered stat name");
        }
    };

    for (const SourceFile &sf : ctx.files) {
        if (!sf.isJson) continue;
        JsonParser parser(sf.raw);
        JVal root = parser.parse();
        if (!parser.ok()) {
            reportAt(sf, parser.errorLine(), "schema-xref",
                     "scenario file is not valid JSON");
            continue;
        }
        if (root.kind != JVal::Obj) continue;
        checkKeys(sf, root, specSchema(""), "experiment spec",
                  specSrc);
        for (const auto &f : root.fields) {
            if (f.first == "seed")
                checkKeys(sf, f.second, specSchema("seed"),
                          "\"seed\"", specSrc);
            else if (f.first == "mixes")
                checkKeys(sf, f.second, specSchema("mixes"),
                          "\"mixes\"", specSrc);
            else if (f.first == "overrides")
                checkOverrides(sf, f.second);
            else if (f.first == "groups" || f.first == "variants") {
                if (f.second.kind != JVal::Arr) continue;
                for (const JVal &item : f.second.items) {
                    checkKeys(sf, item, spec.itemKeys,
                              "\"" + f.first + "\" item", specSrc);
                    if (const JVal *ov = field(item, "overrides"))
                        checkOverrides(sf, *ov);
                }
            } else if (f.first == "output") {
                checkKeys(sf, f.second, specSchema("output"),
                          "\"output\"", specSrc);
                const JVal *columns = field(f.second, "columns");
                if (columns == nullptr ||
                    columns->kind != JVal::Arr)
                    continue;
                for (const JVal &col : columns->items) {
                    checkKeys(sf, col, spec.itemKeys,
                              "\"columns\" item", specSrc);
                    const JVal *key = field(col, "key");
                    if (key == nullptr || key->kind != JVal::Str)
                        continue;
                    if (aggregates.count(key->str) != 0) continue;
                    if (hasLiteralDot(key->str)) {
                        // The phase segment is interpolated into the
                        // stat name at runtime, so the generic
                        // pattern check accepts any string there;
                        // check it against the preset labels.
                        std::string phase = kvPhaseSegment(key->str);
                        if (havePhaseSource && !phase.empty() &&
                            phaseLabels.count(phase) == 0)
                            reportAt(sf, key->line, "stat-xref",
                                     "column key \"" + key->str +
                                         "\" names KV load-trace "
                                         "phase \"" + phase +
                                         "\" but no addPhase() "
                                         "label matches (known: " +
                                         joined(phaseLabels) + ")");
                        else if (haveBindings && !resolves(key->str))
                            reportAt(sf, key->line, "stat-xref",
                                     "column references stat \"" +
                                         key->str +
                                         "\" but no binding can "
                                         "produce that name");
                    } else {
                        reportAt(sf, key->line, "schema-xref",
                                 "column key \"" + key->str +
                                     "\" is neither an aggregate "
                                     "column (" +
                                     joined(aggregates) +
                                     ") nor a dotted stat name");
                    }
                }
            }
        }
    }
}

} // namespace jlint
