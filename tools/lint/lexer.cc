#include "tools/lint/lexer.hh"

#include <cctype>

namespace jlint {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace {

/**
 * A cursor over the raw text that transparently skips line splices
 * (backslash-newline, optionally with a carriage return) while
 * keeping byte offsets and physical line numbers exact. Raw string
 * bodies bypass it via rawGet().
 */
class Cursor
{
  public:
    explicit Cursor(const std::string &s) : s_(s) { skipSplices(); }

    bool atEnd() const { return i_ >= s_.size(); }
    char peek() const { return atEnd() ? '\0' : s_[i_]; }

    /** Lookahead past splices without consuming. */
    char
    peek2() const
    {
        Cursor copy(*this);
        copy.get();
        return copy.peek();
    }

    std::size_t offset() const { return i_; }
    std::size_t line() const { return line_; }

    char
    get()
    {
        if (atEnd()) return '\0';
        char c = s_[i_++];
        if (c == '\n') line_++;
        skipSplices();
        return c;
    }

    /** Consume one byte with NO splice processing (raw strings). */
    char
    rawGet()
    {
        if (i_ >= s_.size()) return '\0';
        char c = s_[i_++];
        if (c == '\n') line_++;
        return c;
    }

  private:
    void
    skipSplices()
    {
        while (i_ < s_.size() && s_[i_] == '\\') {
            std::size_t j = i_ + 1;
            if (j < s_.size() && s_[j] == '\r') j++;
            if (j < s_.size() && s_[j] == '\n') {
                i_ = j + 1;
                line_++;
            } else {
                break;
            }
        }
    }

    const std::string &s_;
    std::size_t i_ = 0;
    std::size_t line_ = 1;
};

bool
isStringPrefix(const std::string &ident)
{
    return ident == "u8" || ident == "u" || ident == "U" ||
           ident == "L" || ident == "R" || ident == "u8R" ||
           ident == "uR" || ident == "UR" || ident == "LR";
}

bool
isRawPrefix(const std::string &ident)
{
    return !ident.empty() && ident.back() == 'R';
}

} // namespace

LexedSource
lex(const std::string &raw)
{
    LexedSource out;
    Cursor c(raw);
    bool lineHasToken = false; // anything but whitespace seen on line
    bool inDirective = false;

    auto push = [&](Tok kind, std::string text, std::size_t offset,
                    std::size_t line) {
        out.tokens.push_back(
            Token{kind, std::move(text), offset, line, inDirective});
        lineHasToken = true;
    };

    auto addComment = [&](std::size_t line, const std::string &text) {
        out.comments[line] += text;
    };

    // Reads a normal (non-raw) quoted literal after the opening
    // quote was consumed; returns the body.
    auto readQuoted = [&](char quote) {
        std::string body;
        while (!c.atEnd()) {
            char ch = c.get();
            if (ch == '\\') {
                body += ch;
                if (!c.atEnd()) body += c.get();
                continue;
            }
            if (ch == quote || ch == '\n') break; // unterminated: stop
            body += ch;
        }
        return body;
    };

    // Reads R"delim( ... )delim" after the opening quote was
    // consumed. No splice processing inside the body.
    auto readRawString = [&] {
        std::string delim;
        while (!c.atEnd() && c.peek() != '(' && c.peek() != '\n' &&
               delim.size() < 16)
            delim += c.rawGet();
        if (c.peek() == '(') c.rawGet();
        const std::string closer = ")" + delim + "\"";
        std::string body;
        while (!c.atEnd()) {
            body += c.rawGet();
            if (body.size() >= closer.size() &&
                body.compare(body.size() - closer.size(),
                             closer.size(), closer) == 0) {
                body.resize(body.size() - closer.size());
                break;
            }
        }
        return body;
    };

    while (!c.atEnd()) {
        char ch = c.peek();
        std::size_t offset = c.offset();
        std::size_t line = c.line();

        if (ch == '\n') {
            c.get();
            lineHasToken = false;
            inDirective = false;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
            c.get();
            continue;
        }

        // Comments. A spliced "// ...\<newline>..." continues, and
        // its text is attributed to the physical start line.
        if (ch == '/' && c.peek2() == '/') {
            std::string text;
            while (!c.atEnd() && c.peek() != '\n') text += c.get();
            addComment(line, text);
            continue;
        }
        if (ch == '/' && c.peek2() == '*') {
            c.get();
            c.get();
            std::string text = "/*";
            std::size_t textLine = line;
            char prev = '\0';
            while (!c.atEnd()) {
                char b = c.get();
                if (b == '\n') {
                    addComment(textLine, text);
                    text.clear();
                    textLine = c.line();
                    prev = '\0';
                    continue;
                }
                text += b;
                if (prev == '*' && b == '/') break;
                prev = b;
            }
            addComment(textLine, text);
            continue;
        }

        // Preprocessor directive: '#' first on the line.
        if (ch == '#' && !lineHasToken) {
            c.get();
            while (!c.atEnd() &&
                   (c.peek() == ' ' || c.peek() == '\t'))
                c.get();
            std::string directive;
            while (!c.atEnd() && isIdentChar(c.peek()))
                directive += c.get();
            if (directive == "include") {
                while (!c.atEnd() &&
                       (c.peek() == ' ' || c.peek() == '\t'))
                    c.get();
                char open = c.peek();
                if (open == '<' || open == '"') {
                    c.get();
                    char close = open == '<' ? '>' : '"';
                    std::string target;
                    while (!c.atEnd() && c.peek() != close &&
                           c.peek() != '\n')
                        target += c.get();
                    out.includes.push_back(IncludeDirective{
                        target, open == '<', line, offset});
                }
                // Includes emit no tokens: the header name must not
                // feed identifier-level rules.
                while (!c.atEnd() && c.peek() != '\n') c.get();
                continue;
            }
            // Other directives: tokens are emitted (macro bodies are
            // code) but flagged, until the unspliced end of line.
            inDirective = true;
            lineHasToken = true;
            push(Tok::Punct, "#", offset, line);
            if (!directive.empty())
                push(Tok::Ident, directive, offset + 1, line);
            continue;
        }

        // Identifier, possibly a literal prefix.
        if (std::isalpha(static_cast<unsigned char>(ch)) != 0 ||
            ch == '_') {
            std::string ident;
            while (!c.atEnd() && isIdentChar(c.peek()))
                ident += c.get();
            if (c.peek() == '"' && isStringPrefix(ident)) {
                c.get();
                std::string body = isRawPrefix(ident)
                                       ? readRawString()
                                       : readQuoted('"');
                push(Tok::String, std::move(body), offset, line);
                continue;
            }
            if (c.peek() == '\'' &&
                (ident == "u8" || ident == "u" || ident == "U" ||
                 ident == "L")) {
                c.get();
                push(Tok::Char, readQuoted('\''), offset, line);
                continue;
            }
            push(Tok::Ident, std::move(ident), offset, line);
            continue;
        }

        if (ch == '"') {
            c.get();
            push(Tok::String, readQuoted('"'), offset, line);
            continue;
        }
        if (ch == '\'') {
            c.get();
            push(Tok::Char, readQuoted('\''), offset, line);
            continue;
        }

        // pp-number: digits, then ident chars, quotes (digit
        // separators), dots, and exponent signs.
        if (std::isdigit(static_cast<unsigned char>(ch)) != 0 ||
            (ch == '.' &&
             std::isdigit(static_cast<unsigned char>(c.peek2())) !=
                 0)) {
            std::string num;
            num += c.get();
            while (!c.atEnd()) {
                char b = c.peek();
                if (isIdentChar(b) || b == '.' || b == '\'') {
                    num += c.get();
                    continue;
                }
                if ((b == '+' || b == '-') && !num.empty() &&
                    (num.back() == 'e' || num.back() == 'E' ||
                     num.back() == 'p' || num.back() == 'P')) {
                    num += c.get();
                    continue;
                }
                break;
            }
            push(Tok::Number, std::move(num), offset, line);
            continue;
        }

        // Everything else: one punctuation byte per token.
        c.get();
        push(Tok::Punct, std::string(1, ch), offset, line);
    }
    return out;
}

} // namespace jlint
