/**
 * @file
 * Shared boilerplate for the developer scratch tools
 * (debug_alloc, debug_solo, debug_scratch): the canonical debug
 * config/mix and the per-app derived metrics each tool was
 * re-deriving by hand. Debug tools print whatever they like — they
 * are not goldens — but they should agree on what "hit%" means.
 */

#ifndef JUMANJI_TOOLS_DEBUG_COMMON_HH
#define JUMANJI_TOOLS_DEBUG_COMMON_HH

#include <cstdint>
#include <cstdio>

#include "src/sim/stats.hh"
#include "src/system/config.hh"
#include "src/system/system.hh"
#include "src/workloads/mixes.hh"


namespace jumanji {
namespace debug {

/** The scratch tools' fixed config: bench scale, seed 1. */
inline SystemConfig
debugConfig()
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.seed = 1;
    return cfg;
}

/** The canonical scratch mix: 4 VMs x (1 xapian + 4 batch), seed 1. */
inline WorkloadMix
debugMix()
{
    Rng rng(1);
    return makeMix({"xapian"}, 4, 4, rng);
}

/** LLC hit rate in percent; 0 when the app made no LLC accesses. */
inline double
hitPercent(const AccessCounters &c)
{
    double accesses = static_cast<double>(c.llcHits + c.llcMisses);
    if (accesses == 0.0) return 0.0;
    return 100.0 * static_cast<double>(c.llcHits) / accesses;
}

/** Column tag for an app row: latency-critical or batch. */
inline const char *
appKind(const AppResult &app)
{
    return app.latencyCritical ? "LC" : "B ";
}

/** printf-friendly cast for %llu columns. */
inline unsigned long long
ull(std::uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

/** Dumps the calibration map the tools share (name, service, ddl). */
inline void
printCalibrations(const LcCalibrationMap &calib)
{
    for (const auto &[name, c] : calib)
        std::printf("calib %s: service=%.0f deadline=%.0f (ratio %.2f)\n",
                    name.c_str(), c.serviceCycles, c.deadline,
                    c.deadline / c.serviceCycles);
}

} // namespace debug
} // namespace jumanji

#endif // JUMANJI_TOOLS_DEBUG_COMMON_HH
