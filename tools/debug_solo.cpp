// Scratch: inspect solo LC-app runs (calibration dynamics).
#include <cstdio>

#include "tools/debug_common.hh"

using namespace jumanji;
using namespace jumanji::debug;

static void
soloRun(const char *name, double util, LcCalibrationMap calib)
{
    SystemConfig cfg = debugConfig();
    cfg.design = LlcDesign::Static;
    if (util > 0) cfg.utilizationOverride = util;
    else cfg.load = LoadLevel::High;
    cfg.measureTicks *= 4;

    WorkloadMix solo;
    VmSpec vm;
    vm.lcApps.push_back(name);
    solo.vms.push_back(vm);

    System sys(cfg, solo, calib);
    RunResult run = sys.run();
    for (TailLatencyApp *tail : sys.tailApps()) {
        const SampleStat &lat = tail->latencies();
        std::printf("util=%.2f reqs=%zu mean=%.0f p50=%.0f p90=%.0f "
                    "p95=%.0f p99=%.0f max=%.0f\n",
                    util, lat.count(), lat.mean(), lat.percentile(50),
                    lat.percentile(90), lat.percentile(95),
                    lat.percentile(99), lat.max());
    }
    for (const auto &app : run.apps) {
        std::printf("  hit%%=%.1f lat=%.0f instrs=%llu\n",
                    hitPercent(app.counters), app.avgAccessLatency,
                    ull(app.progress.instrs));
    }
}

int
main()
{
    soloRun("xapian", 0.05, {});
    LcCalibrationMap calib;
    calib["xapian"] = LcCalibration{14896.0, 0.0};
    soloRun("xapian", 0.0, calib);  // high load
    soloRun("xapian", 0.10, calib);
    return 0;
}
