/**
 * @file
 * perf_history: compare two bench/profile JSON snapshots with
 * tolerance bands, and maintain a JSONL perf-trajectory file — the
 * seed of a perf-regression gate.
 *
 * Usage:
 *   perf_history compare <baseline.json> <candidate.json>
 *                [--tolerance FRAC] [--strict]
 *   perf_history append <snapshot.json> <trajectory.jsonl>
 *
 * compare flattens both documents to dotted numeric leaves
 * ("phases.simulate_s") and classifies each shared key:
 *
 *  - semantic counters (simulated_accesses, jobs, mixes, seed) must
 *    match exactly — a drift means the measured work changed, which
 *    is a correctness problem, not a perf one;
 *  - timing keys (wall_seconds, accesses_per_sec, anything ending
 *    in _s or _ns) are held to a relative tolerance band (default
 *    ±15%, sized for a noisy 1-CPU CI runner);
 *  - everything else is reported informationally.
 *
 * Keys present in only one snapshot are informational (the bench
 * schema may grow fields). By default out-of-band deltas only warn
 * and the exit status stays 0 — wall-clock on shared runners is too
 * noisy to gate on; --strict turns violations into exit 1 for
 * byte-controlled environments.
 *
 * append validates the snapshot parses and appends it as one
 * compact JSONL line, so the trajectory file is greppable history:
 * one line per (codeVersion, machine, run).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/sim/json.hh"

using jumanji::JsonValue;

namespace {

[[noreturn]] void
usage(int exitCode)
{
    std::fprintf(
        exitCode == 0 ? stdout : stderr,
        "usage: perf_history compare <baseline.json> <candidate.json>"
        " [--tolerance FRAC] [--strict]\n"
        "       perf_history append <snapshot.json> <trajectory.jsonl>"
        "\n");
    std::exit(exitCode);
}

JsonValue
loadJson(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "perf_history: cannot open %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return JsonValue::parse(text, path);
}

struct NumericLeaf
{
    std::string key; // dotted path
    double value = 0.0;
};

void
flattenNumbers(const JsonValue &doc, const std::string &prefix,
               std::vector<NumericLeaf> &out)
{
    if (doc.isNumber()) {
        out.push_back({prefix, doc.asDouble(prefix)});
        return;
    }
    if (doc.isObject()) {
        for (const auto &member : doc.members())
            flattenNumbers(member.second,
                           prefix.empty()
                               ? member.first
                               : prefix + "." + member.first,
                           out);
    }
    // Arrays (profile scope lists) are positional, not stable keys:
    // comparing scopes[3] across runs with different scope sets
    // would misattribute, so array contents are skipped here.
}

const NumericLeaf *
findLeaf(const std::vector<NumericLeaf> &leaves, const std::string &key)
{
    for (const NumericLeaf &leaf : leaves)
        if (leaf.key == key) return &leaf;
    return nullptr;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Counters whose drift means the measured *work* changed. */
bool
isSemanticKey(const std::string &key)
{
    return endsWith(key, "simulated_accesses") ||
           endsWith(key, "jobs") || endsWith(key, "mixes") ||
           endsWith(key, "seed") || endsWith(key, "calls");
}

/** Wall-clock-derived keys, held to the tolerance band. */
bool
isTimingKey(const std::string &key)
{
    return endsWith(key, "wall_seconds") ||
           endsWith(key, "accesses_per_sec") || endsWith(key, "_s") ||
           endsWith(key, "_ns");
}

int
runCompare(const std::string &basePath, const std::string &candPath,
           double tolerance, bool strict)
{
    std::vector<NumericLeaf> base, cand;
    flattenNumbers(loadJson(basePath), "", base);
    flattenNumbers(loadJson(candPath), "", cand);

    std::size_t compared = 0;
    std::size_t violations = 0;
    for (const NumericLeaf &b : base) {
        const NumericLeaf *c = findLeaf(cand, b.key);
        if (c == nullptr) {
            std::printf("  -     %-28s only in baseline\n",
                        b.key.c_str());
            continue;
        }
        compared++;
        if (isSemanticKey(b.key)) {
            if (b.value == c->value) {
                std::printf("  ok    %-28s %.6g (exact)\n",
                            b.key.c_str(), b.value);
            } else {
                violations++;
                std::printf("  FAIL  %-28s %.6g -> %.6g (semantic "
                            "counter must match exactly)\n",
                            b.key.c_str(), b.value, c->value);
            }
            continue;
        }
        if (isTimingKey(b.key) && b.value != 0.0) {
            const double rel = (c->value - b.value) / b.value;
            if (std::fabs(rel) <= tolerance) {
                std::printf("  ok    %-28s %.6g -> %.6g (%+.1f%%)\n",
                            b.key.c_str(), b.value, c->value,
                            rel * 100.0);
            } else {
                violations++;
                std::printf("  WARN  %-28s %.6g -> %.6g (%+.1f%%, "
                            "band ±%.0f%%)\n",
                            b.key.c_str(), b.value, c->value,
                            rel * 100.0, tolerance * 100.0);
            }
            continue;
        }
        std::printf("  info  %-28s %.6g -> %.6g\n", b.key.c_str(),
                    b.value, c->value);
    }
    for (const NumericLeaf &c : cand)
        if (findLeaf(base, c.key) == nullptr)
            std::printf("  +     %-28s only in candidate\n",
                        c.key.c_str());

    std::printf("perf_history: %zu keys compared, %zu out of band "
                "(tolerance ±%.0f%%)%s\n",
                compared, violations, tolerance * 100.0,
                strict ? "" : ", warn-only");
    return (strict && violations > 0) ? 1 : 0;
}

int
runAppend(const std::string &snapshotPath,
          const std::string &trajectoryPath)
{
    // Parse first: an unreadable snapshot must not corrupt the
    // trajectory with a partial or non-JSON line.
    JsonValue doc = loadJson(snapshotPath);
    std::ofstream os(trajectoryPath, std::ios::app);
    if (!os) {
        std::fprintf(stderr, "perf_history: cannot open %s\n",
                     trajectoryPath.c_str());
        return 2;
    }
    os << doc.dump(-1) << "\n";
    os.close();

    std::ifstream is(trajectoryPath);
    std::size_t lines = 0;
    std::string line;
    while (std::getline(is, line))
        if (!line.empty()) lines++;
    std::printf("perf_history: appended %s to %s (%zu entries)\n",
                snapshotPath.c_str(), trajectoryPath.c_str(), lines);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) usage(2);
    const std::string mode = argv[1];
    try {
        if (mode == "compare") {
            double tolerance = 0.15;
            bool strict = false;
            std::vector<std::string> paths;
            for (int i = 2; i < argc; i++) {
                const std::string arg = argv[i];
                if (arg == "--tolerance") {
                    if (i + 1 >= argc) usage(2);
                    tolerance = std::strtod(argv[++i], nullptr);
                    if (tolerance <= 0.0) usage(2);
                } else if (arg == "--strict") {
                    strict = true;
                } else {
                    paths.push_back(arg);
                }
            }
            if (paths.size() != 2) usage(2);
            return runCompare(paths[0], paths[1], tolerance, strict);
        }
        if (mode == "append") {
            if (argc != 4) usage(2);
            return runAppend(argv[2], argv[3]);
        }
        if (mode == "--help" || mode == "-h") usage(0);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "perf_history: %s\n", e.what());
        return 2;
    }
    usage(2);
}
