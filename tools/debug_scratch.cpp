// Developer scratch harness: dumps per-design internals for one mix.
#include <cstdio>

#include "src/system/harness.hh"
#include "tools/debug_common.hh"

using namespace jumanji;
using namespace jumanji::debug;

static void
dumpRun(const char *label, System &sys, const RunResult &run)
{
    std::printf("==== %s ====\n", label);
    MemPath &path = sys.memPath();
    std::printf("  tail worst ratio: %.3f   attackers %.3f\n",
                run.worstTailRatio(), run.attackersPerAccess);
    for (const auto &app : run.apps) {
        const auto &c = app.counters;
        double hops = c.llcHits + c.llcMisses == 0
                          ? 0.0
                          : static_cast<double>(c.nocHops) /
                                (2.0 * static_cast<double>(c.llcHits +
                                                           c.llcMisses));
        double acc = static_cast<double>(c.llcHits + c.llcMisses);
        std::printf("  app %-14s vm%d %s ipc=%.3f llcHit%%=%.1f hops=%.2f "
                    "lat=%.0f tail=%.0f ddl=%.0f reqs=%llu\n",
                    app.name.c_str(), app.vm, appKind(app),
                    app.progress.ipc(), hitPercent(c), hops,
                    acc > 0 ? app.avgAccessLatency : 0.0,
                    app.tailLatency, app.deadline,
                    ull(app.requestsCompleted));
    }
    // Allocation timeline for LC apps (last few epochs).
    const auto &tl = sys.allocationTimeline();
    std::printf("  alloc timeline (LC vcs, lines):\n");
    for (std::size_t e = 0; e < tl.size(); e++) {
        if (e % 2 != 0 && e + 1 != tl.size()) continue;
        std::printf("    epoch %2zu:", e);
        for (const auto &[vc, lines] : tl[e].allocLines) {
            if (vc % 5 == 0) // LC apps sit first in each VM (slot order)
                std::printf(" vc%d=%llu", vc, ull(lines));
        }
        std::printf(" inval=%llu\n", ull(tl[e].invalidations));
    }
}

int
main()
{
    SystemConfig cfg = debugConfig();
    WorkloadMix mix = debugMix();

    ExperimentHarness harness(cfg);
    auto calib = harness.calibrationsFor(mix);
    printCalibrations(calib);

    MixResult result = harness.runMix(
        mix,
        {LlcDesign::Adaptive, LlcDesign::VMPart, LlcDesign::Jigsaw,
         LlcDesign::Jumanji, LlcDesign::JumanjiInsecure,
         LlcDesign::JumanjiIdealBatch},
        LoadLevel::High);
    std::printf("\n%-20s %10s %10s %10s %8s %8s %8s\n", "design",
                "tailRatio", "batchWS", "attackers", "lcHit%", "bHit%",
                "bLat");
    for (const auto &d : result.designs) {
        double lcHits = 0, lcAcc = 0, bHits = 0, bAcc = 0, bLat = 0;
        int bN = 0;
        for (const auto &a : d.run.apps) {
            double acc = static_cast<double>(a.counters.llcHits +
                                             a.counters.llcMisses);
            if (a.latencyCritical) {
                lcHits += static_cast<double>(a.counters.llcHits);
                lcAcc += acc;
            } else {
                bHits += static_cast<double>(a.counters.llcHits);
                bAcc += acc;
                bLat += a.avgAccessLatency;
                bN++;
            }
        }
        std::printf("%-20s %10.3f %10.3f %10.3f %8.1f %8.1f %8.0f\n",
                    llcDesignName(d.design), d.tailRatio, d.batchSpeedup,
                    d.run.attackersPerAccess, 100.0 * lcHits / lcAcc,
                    100.0 * bHits / bAcc, bLat / bN);
    }
    return 0;
}
