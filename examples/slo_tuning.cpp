/**
 * @file
 * Example: tuning a latency SLO with the feedback controller.
 *
 * Shows the control loop from the operator's perspective: register a
 * latency-critical service with a deadline, watch the controller
 * size its LLC reservation epoch by epoch, then tighten the deadline
 * mid-run and watch the allocation grow to compensate.
 *
 * Usage: slo_tuning [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "src/sim/logging.hh"
#include "src/system/harness.hh"

int
main(int argc, char **argv)
{
    using namespace jumanji;
    setQuiet(true);

    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;

    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.seed = seed;
    cfg.design = LlcDesign::Jumanji;
    cfg.load = LoadLevel::High;

    Rng rng(seed);
    WorkloadMix mix = makeMix({"masstree"}, 4, 4, rng);

    ExperimentHarness harness(cfg);
    auto calib = harness.calibrationsFor(mix);
    double deadline = calib.at("masstree").deadline;

    System system(cfg, mix, calib);

    std::printf("masstree SLO: p95 <= %.0f cycles\n\n", deadline);
    std::printf("%-8s %16s %16s %12s\n", "epoch", "controller tgt",
                "measured tail", "verdict");

    // Phase 1: run 12 epochs under the calibrated deadline.
    FeedbackController *ctrl = system.runtime().controller(0);
    for (int epoch = 1; epoch <= 12; epoch++) {
        system.runUntil(static_cast<Tick>(epoch) * cfg.epochTicks);
        std::printf("%-8d %16llu %16.0f %12s\n", epoch,
                    static_cast<unsigned long long>(ctrl->targetLines()),
                    ctrl->lastTail(),
                    ctrl->lastTail() <= deadline ? "ok" : "over");
    }

    // Phase 2: the operator tightens the SLO by 30%.
    double tightened = deadline * 0.7;
    std::printf("\n-- SLO tightened to %.0f cycles --\n\n", tightened);
    for (VcId vc : {0, 5, 10, 15})
        system.runtime().setDeadline(vc, tightened);

    for (int epoch = 13; epoch <= 24; epoch++) {
        system.runUntil(static_cast<Tick>(epoch) * cfg.epochTicks);
        std::printf("%-8d %16llu %16.0f %12s\n", epoch,
                    static_cast<unsigned long long>(ctrl->targetLines()),
                    ctrl->lastTail(),
                    ctrl->lastTail() <= tightened ? "ok" : "over");
    }

    std::printf("\npanics: %llu. The controller grows the reservation "
                "after the SLO tightens and settles below the new "
                "deadline (paper Listing 1 / Sec. V-C).\n",
                static_cast<unsigned long long>(ctrl->panics()));
    return 0;
}
