/**
 * @file
 * Quickstart: build a 4-VM datacenter node, run it under Jumanji,
 * and print tail latency, batch speedup vs. Static, and the
 * security vulnerability metric.
 *
 * Usage: quickstart [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "src/system/harness.hh"

int
main(int argc, char **argv)
{
    using namespace jumanji;

    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

    // 1. Configure the machine: Table II geometry, bench time scale.
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.seed = seed;

    // 2. Build a workload: 4 VMs, each one xapian instance plus four
    //    random SPEC-like batch applications.
    Rng rng(seed);
    WorkloadMix mix = makeMix({"xapian"}, /*vms=*/4, /*batchPerVm=*/4,
                              rng);

    std::printf("workload: 4 VMs x (1 xapian + 4 batch)\n");
    for (std::size_t v = 0; v < mix.vms.size(); v++) {
        std::printf("  VM%zu: %s +", v, mix.vms[v].lcApps[0].c_str());
        for (const auto &b : mix.vms[v].batchApps)
            std::printf(" %s", b.c_str());
        std::printf("\n");
    }

    // 3. Run under Static (the baseline) and Jumanji.
    ExperimentHarness harness(cfg);
    MixResult result = harness.runMix(
        mix, {LlcDesign::Jumanji}, LoadLevel::High);

    const DesignResult &st = result.of(LlcDesign::Static);
    const DesignResult &ju = result.of(LlcDesign::Jumanji);

    std::printf("\n%-12s %14s %14s %14s\n", "design", "tail/deadline",
                "batch speedup", "attackers");
    for (const DesignResult *d : {&st, &ju}) {
        std::printf("%-12s %14.3f %14.3f %14.3f\n",
                    llcDesignName(d->design), d->tailRatio,
                    d->batchSpeedup, d->run.attackersPerAccess);
    }

    std::printf("\nJumanji: deadline %s (ratio %.2f), batch %+.1f%%, "
                "%s potential attackers per access.\n",
                ju.tailRatio <= 1.0 ? "met" : "MISSED", ju.tailRatio,
                100.0 * (ju.batchSpeedup - 1.0),
                ju.run.attackersPerAccess == 0.0 ? "zero" : "NONZERO");
    return 0;
}
