/**
 * @file
 * Example: consolidation planning for a datacenter node.
 *
 * A common operator question: how many tenants (VMs) can share one
 * 20-core machine before tail-latency SLOs or batch throughput
 * degrade? This example regroups a fixed population of applications
 * (4 latency-critical + 16 batch) into 2, 4, 8, and 12 VMs, runs
 * each consolidation level under Jumanji, and reports SLO compliance,
 * batch throughput, and the security posture.
 *
 * Usage: datacenter_consolidation [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "src/sim/logging.hh"
#include "src/system/harness.hh"

int
main(int argc, char **argv)
{
    using namespace jumanji;
    setQuiet(true);

    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.seed = seed;

    // The application population: one of each TailBench-like service
    // plus a random mix of batch jobs.
    Rng rng(seed);
    WorkloadMix base = makeMix(allTailAppNames(), 4, 4, rng);

    ExperimentHarness harness(cfg);

    std::printf("Consolidating 4 latency-critical + 16 batch apps "
                "under Jumanji:\n\n");
    std::printf("%-8s %18s %16s %16s\n", "VMs", "SLO (tail/ddl)",
                "batch speedup", "attackers");

    for (std::uint32_t vms : {2u, 4u, 8u, 12u}) {
        WorkloadMix mix = regroupMix(base, vms);
        MixResult result = harness.runMix(mix, {LlcDesign::Jumanji},
                                          LoadLevel::High);
        const DesignResult &ju = result.of(LlcDesign::Jumanji);
        std::printf("%-8u %11.3f %-6s %16.3f %16.3f\n", vms,
                    ju.meanTailRatio,
                    ju.meanTailRatio <= 1.0 ? "(met)" : "(MISS)",
                    ju.batchSpeedup, ju.run.attackersPerAccess);
    }

    std::printf("\nInterpretation: Jumanji holds the SLO and keeps 0 "
                "potential attackers per access at every consolidation "
                "level; batch speedup degrades only gradually as bank "
                "isolation fragments the LLC (paper Fig. 17).\n");
    return 0;
}
