/**
 * @file
 * Example: auditing an LLC configuration for cross-VM attack
 * exposure.
 *
 * Uses the library's security instrumentation to answer: if tenant A
 * is a victim, how many co-located untrusted applications could
 * observe its LLC accesses through bank-shared structures (ports,
 * replacement metadata)? Audits all four LLC management designs and
 * demonstrates the port channel directly with an attacker/victim
 * pair on a bank-sharing configuration.
 *
 * Usage: security_audit [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "src/cpu/core_model.hh"
#include "src/security/attacks.hh"
#include "src/sim/logging.hh"
#include "src/system/harness.hh"

using namespace jumanji;

namespace {

/** Part 1: the fleet audit — attackers-per-access per design. */
void
fleetAudit(std::uint64_t seed)
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.seed = seed;
    Rng rng(seed);
    WorkloadMix mix = makeMix({"silo"}, 4, 4, rng);

    ExperimentHarness harness(cfg);
    MixResult result = harness.runMix(
        mix,
        {LlcDesign::Adaptive, LlcDesign::VMPart, LlcDesign::Jigsaw,
         LlcDesign::Jumanji},
        LoadLevel::High);

    std::printf("Fleet audit: average untrusted apps sharing the "
                "accessed bank\n\n");
    std::printf("%-14s %12s %s\n", "design", "attackers", "verdict");
    for (const auto &d : result.designs) {
        const char *verdict =
            d.run.attackersPerAccess == 0.0
                ? "isolated: port+leakage channels closed"
            : d.run.attackersPerAccess < 1.0
                ? "mitigated heuristically: NOT guaranteed"
                : "exposed: every access observable";
        std::printf("%-14s %12.3f %s\n", llcDesignName(d.design),
                    d.run.attackersPerAccess, verdict);
    }
}

/** Part 2: demonstrate the port channel on a shared-bank config. */
void
portChannelDemo()
{
    LlcParams llc;
    llc.banks = 4;
    llc.setsPerBank = 64;
    llc.ways = 16;
    llc.timing.portOccupancy = 3;
    MeshParams mesh;
    mesh.cols = 2;
    mesh.rows = 2;
    MemPath path(llc, mesh, MemoryParams{}, UmonParams{}, 1);

    std::vector<BankId> all = {0, 1, 2, 3};
    PlacementDescriptor striped;
    striped.fillStriped(all);

    path.registerVc(0);
    path.installPlacement(0, striped);
    PortAttackerApp attacker(
        linesTargetingBank(appAddressBase(0), 1, 4, 32), 50);
    AccessOwner ao;
    ao.app = 0;
    ao.vc = 0;
    ao.vm = 0;
    CoreModel attackerCore(0, ao, &attacker, &path, Rng(1));

    path.registerVc(1);
    path.installPlacement(1, striped);
    std::vector<std::vector<LineAddr>> perBank;
    for (BankId b = 0; b < 4; b++)
        perBank.push_back(
            linesTargetingBank(appAddressBase(1), b, 4, 32));
    RotatingVictimApp victim(std::move(perBank), 30000, 10000);
    AccessOwner vo;
    vo.app = 1;
    vo.vc = 1;
    vo.vm = 1;
    CoreModel victimCore(3, vo, &victim, &path, Rng(2));

    EventQueue queue;
    queue.schedule(&attackerCore, 0);
    queue.schedule(&victimCore, 0);
    queue.runUntil(4 * 40000 * 2);

    double floor = 1e30, peak = 0.0;
    for (const auto &s : attacker.trace()) {
        if (s.when < 5000) continue; // skip cold start
        floor = std::min(floor, s.cyclesPerAccess);
        peak = std::max(peak, s.cyclesPerAccess);
    }
    std::printf("\nPort-channel probe (attacker on bank 1, rotating "
                "victim):\n");
    std::printf("  quiet-bank access time : %.2f cycles\n", floor);
    std::printf("  contended access time  : %.2f cycles\n", peak);
    std::printf("  => a %.1f%% timing signal reveals when the victim "
                "uses the attacker's bank.\n",
                100.0 * (peak - floor) / floor);
}

/** Part 3: the conflict (prime+probe) channel and its defense. */
void
conflictChannelDemo()
{
    std::printf("\nConflict-channel probe (prime+probe, one bank):\n");
    for (bool partitioned : {false, true}) {
        CacheArray array(64, 8, ReplKind::DRRIP, 1);
        if (partitioned) {
            array.setWayMask(0, WayMask::range(0, 4));
            array.setWayMask(1, WayMask::range(4, 4));
        }
        AccessOwner attacker;
        attacker.vc = 0;
        attacker.vm = 0;
        AccessOwner victim;
        victim.vc = 1;
        victim.vm = 1;

        // Calibrate a skew-free prime set, as a real attacker does.
        std::vector<LineAddr> prime;
        {
            CacheArray scratch(64, 8, ReplKind::LRU, 1);
            scratch.setWayMask(attacker.vc,
                               array.wayMaskFor(attacker.vc));
            for (LineAddr cand = 0; prime.size() < 180 && cand < 100000;
                 cand++) {
                if (!scratch.access(cand, attacker).evicted)
                    prime.push_back(cand);
            }
        }
        ConflictProber prober(prime, attacker);
        prober.prime(array);
        std::uint64_t quiet = prober.probe(array);
        for (LineAddr l = 5000; l < 5400; l++) array.access(l, victim);
        std::uint64_t active = prober.probe(array);
        std::printf("  %-22s quiet=%3llu evictions, victim "
                    "active=%3llu -> %s\n",
                    partitioned ? "way-partitioned:" : "shared cache:",
                    static_cast<unsigned long long>(quiet),
                    static_cast<unsigned long long>(active),
                    active > quiet ? "LEAKS victim activity"
                                   : "defended");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
    fleetAudit(seed);
    portChannelDemo();
    conflictChannelDemo();
    std::printf("\nConclusion: only strict bank isolation (Jumanji) "
                "closes the port and replacement-state channels; "
                "way-partitioning alone cannot (paper Sec. VI).\n");
    return 0;
}
